"""Scaling analysis over thickets (§5.2.1 and the Fig. 11 use case).

Turns a strong/weak-scaling ensemble into the standard derived views:
speedup and parallel efficiency per resource count, a Karp-Flatt
serial-fraction estimate, and — via the Extra-P interface — a ranked
list of prospective scalability bottlenecks ("by generating such
performance models in bulk ... developers can easily identify regions
which might become scalability bottlenecks").
"""

from __future__ import annotations

from typing import Any, Hashable, Sequence

import numpy as np

from ..frame import DataFrame, Index

__all__ = ["strong_scaling_table", "karp_flatt", "scalability_bottlenecks",
           "weak_scaling_efficiency"]


def _series_by_resource(tk, node_name: str, metric: Hashable,
                        resource_column: str) -> dict[float, list[float]]:
    node = tk.get_node(node_name)
    resource_of = {
        pid: float(row[resource_column])
        for pid, row in tk.metadata.iterrows()
    }
    out: dict[float, list[float]] = {}
    col = tk.dataframe.column(metric)
    for i, t in enumerate(tk.dataframe.index.values):
        if t[0] is not node:
            continue
        v = col[i]
        if v is None or (isinstance(v, float) and np.isnan(v)):
            continue
        out.setdefault(resource_of[t[1]], []).append(float(v))
    if not out:
        raise ValueError(
            f"no measurements of {metric!r} for node {node_name!r}")
    return out


def strong_scaling_table(tk, node_name: str, metric: Hashable,
                         resource_column: str = "numhosts") -> DataFrame:
    """Per-resource-count mean time, speedup, and parallel efficiency.

    Speedup is relative to the smallest resource count present;
    efficiency normalizes by the resource ratio (ideal = 1.0).
    """
    series = _series_by_resource(tk, node_name, metric, resource_column)
    resources = sorted(series)
    base_r = resources[0]
    base_t = float(np.mean(series[base_r]))
    rows = {
        "mean": [], "std": [], "speedup": [], "efficiency": [], "runs": [],
    }
    for r in resources:
        mean = float(np.mean(series[r]))
        rows["mean"].append(mean)
        rows["std"].append(float(np.std(series[r])))
        speedup = base_t / mean
        rows["speedup"].append(speedup)
        rows["efficiency"].append(speedup / (r / base_r))
        rows["runs"].append(len(series[r]))
    return DataFrame(rows, index=Index(resources, name=resource_column))


def karp_flatt(tk, node_name: str, metric: Hashable,
               resource_column: str = "numhosts") -> DataFrame:
    """Karp-Flatt experimentally determined serial fraction.

    ``e = (1/s - 1/p) / (1 - 1/p)`` for speedup *s* on *p* resources.
    A roughly constant *e* means Amdahl-style serial fraction; growing
    *e* indicates parallel overhead (the Fig. 17 knee).
    """
    table = strong_scaling_table(tk, node_name, metric, resource_column)
    resources = [float(r) for r in table.index.values]
    base_r = resources[0]
    es = []
    for r, s in zip(resources, table.column("speedup")):
        p = r / base_r
        if p <= 1.0:
            es.append(float("nan"))
            continue
        es.append(float((1.0 / s - 1.0 / p) / (1.0 - 1.0 / p)))
    out = table.copy()
    out["karp_flatt"] = es
    return out


def weak_scaling_efficiency(tk, node_name: str, metric: Hashable,
                            resource_column: str = "numhosts") -> DataFrame:
    """Weak-scaling view: efficiency = t(base)/t(p) (ideal = flat 1.0)."""
    series = _series_by_resource(tk, node_name, metric, resource_column)
    resources = sorted(series)
    base_t = float(np.mean(series[resources[0]]))
    means = [float(np.mean(series[r])) for r in resources]
    return DataFrame(
        {"mean": means, "efficiency": [base_t / m for m in means]},
        index=Index(resources, name=resource_column),
    )


def scalability_bottlenecks(tk, parameter_column: str, metric: Hashable,
                            top: int | None = None,
                            exclude: Sequence[str] = ()) -> list[dict[str, Any]]:
    """Rank call-tree nodes by modeled asymptotic growth.

    Fits an Extra-P model per node and sorts by the growth exponent of
    the winning term (then by predicted share at 4× the largest
    measured parameter value).  Nodes whose cost *grows* with the
    resource count are the prospective bottlenecks.
    """
    from ..model import ExtrapInterface

    models = ExtrapInterface().model_thicket(tk, parameter_column, metric)
    p_max = max(float(row[parameter_column])
                for _, row in tk.metadata.iterrows())
    horizon = 4.0 * p_max

    entries = []
    for node, model in models.items():
        if node.frame.name in exclude:
            continue
        entries.append({
            "node": node.frame.name,
            "model": str(model),
            "degree": model.degree(),
            "growing": model.is_growing(),
            "predicted_at_horizon": float(model.evaluate(horizon)),
            "r_squared": model.r_squared,
        })
    entries.sort(key=lambda e: (-e["degree"] if e["growing"] else 0.0,
                                -e["predicted_at_horizon"]))
    return entries[:top] if top else entries
