"""Metadata group-by (§4.1.2, Fig. 7).

Grouping on one or more metadata columns partitions the ensemble into
one new Thicket per unique value combination, returned as an ordered
mapping keyed exactly like the paper's output::

    [('clang-9.0.0', 1048576), ('clang-9.0.0', 4194304), ...]
"""

from __future__ import annotations

from typing import Sequence

from ..frame.index import sort_positions

__all__ = ["groupby_metadata", "GroupByResult"]


class GroupByResult(dict):
    """Ordered mapping group-key → Thicket, with a friendly repr."""

    def __repr__(self) -> str:
        return (f"{len(self)} thickets created...\n"
                f"{list(self.keys())!r}")


def groupby_metadata(tk, by: str | Sequence[str]) -> GroupByResult:
    """Partition *tk* by unique value (combinations) of metadata columns."""
    from .filtering import filter_profile

    if isinstance(by, str):
        columns = [by]
        scalar_key = True
    else:
        columns = list(by)
        scalar_key = len(columns) == 1
    for c in columns:
        if c not in tk.metadata:
            raise KeyError(f"metadata column {c!r} not found")

    buckets: dict[tuple, list] = {}
    for pid, row in tk.metadata.iterrows():
        key = tuple(
            row[c].item() if hasattr(row[c], "item") else row[c] for c in columns
        )
        buckets.setdefault(key, []).append(pid)

    keys = list(buckets.keys())
    ordered = [keys[i] for i in sort_positions(keys)]

    result = GroupByResult()
    for key in ordered:
        out_key = key[0] if scalar_key else key
        result[out_key] = filter_profile(tk, buckets[key])
    return result
