"""Thicket persistence: lossless, crash-safe JSON round trip.

Analyses are often iterative (the paper's Jupyter workflows); saving a
composed thicket avoids re-reading hundreds of raw profiles, which
makes the saved file the unit of durable state.  The current format,
``repro-thicket-v2``, therefore hardens the store:

* **Atomic writes** — :func:`save_thicket` goes through
  :func:`repro.ioutil.atomic_write_text` (temp file + fsync +
  ``os.replace``), so a crash mid-save leaves the previous store
  intact, never a truncated hybrid.
* **Content checksum** — the document embeds a sha256 of the canonical
  payload encoding; :func:`load_thicket` verifies it and raises
  :class:`repro.errors.CorruptStoreError` on any mismatch, undecodable
  file, or unknown format (never a bare ``json.JSONDecodeError``).
* **Typed dtype hints** — each table records its float columns so a
  sparse thicket's ``NaN`` cells (stored as ``null``) come back as
  ``np.nan`` in a float column, even when the column is entirely NaN.

Legacy ``repro-thicket-v1`` files (no checksum, flat layout) still
load; saving always produces v2.  The payload layout itself is
unchanged: the call graph as a nested literal, node-indexed tables
with positional node references, and the metadata table verbatim.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from ..errors import CorruptStoreError, PersistenceError
from ..frame import DataFrame, Index, MultiIndex
from ..graph import Graph
from ..ioutil import atomic_write_text, canonical_json, sha256_of

__all__ = ["thicket_to_json", "thicket_from_json", "save_thicket",
           "load_thicket", "FORMAT_V1", "FORMAT_V2"]

FORMAT_V1 = "repro-thicket-v1"
FORMAT_V2 = "repro-thicket-v2"


def _jsonable(v: Any) -> Any:
    if hasattr(v, "item"):
        v = v.item()
    if isinstance(v, float) and np.isnan(v):
        return None
    return v


def _encode_key(c: Any) -> Any:
    return list(c) if isinstance(c, tuple) else c


def _decode_key(c: Any) -> Any:
    return tuple(c) if isinstance(c, list) else c


def _float_columns(df: DataFrame) -> list:
    return [_encode_key(c) for c in df.columns
            if df.column(c).dtype.kind == "f"]


def _decode_columns(table: dict, cols: list) -> dict:
    """Column → value list, with ``null`` restored to ``np.nan`` in the
    columns the store marked as floats (v2; v1 has no marks and relies
    on mixed-value inference in the frame layer)."""
    float_cols = {_decode_key(c) for c in table.get("float_columns", [])}
    data = table["data"]
    out = {}
    for j, c in enumerate(cols):
        values = [row[j] for row in data]
        if c in float_cols:
            values = [np.nan if v is None else float(v) for v in values]
        out[c] = values
    return out


def thicket_to_payload(tk) -> dict:
    """The checksummed body of a v2 store (no envelope)."""
    node_pos = {n: i for i, n in enumerate(tk.graph.node_order())}

    perf = {
        "columns": [_encode_key(c) for c in tk.dataframe.columns],
        "float_columns": _float_columns(tk.dataframe),
        "index": [[node_pos[t[0]], _jsonable(t[1])]
                  for t in tk.dataframe.index.values],
        "index_names": list(tk.dataframe.index.names),
        "data": [
            [_jsonable(tk.dataframe.column(c)[i])
             for c in tk.dataframe.columns]
            for i in range(len(tk.dataframe))
        ],
    }
    meta = {
        "columns": [_encode_key(c) for c in tk.metadata.columns],
        "float_columns": _float_columns(tk.metadata),
        "index": [_jsonable(p) for p in tk.metadata.index.values],
        "data": [
            [_jsonable(tk.metadata.column(c)[i]) for c in tk.metadata.columns]
            for i in range(len(tk.metadata))
        ],
    }
    stats_cols = [c for c in tk.statsframe.columns]
    stats = {
        "columns": [_encode_key(c) for c in stats_cols],
        "float_columns": _float_columns(tk.statsframe),
        "index": [node_pos[n] for n in tk.statsframe.index.values],
        "data": [
            [_jsonable(tk.statsframe.column(c)[i]) for c in stats_cols]
            for i in range(len(tk.statsframe))
        ],
    }
    return {
        "graph": tk.graph.to_literal(),
        "performance_data": perf,
        "metadata": meta,
        "statsframe": stats,
        "profiles": [_jsonable(p) for p in tk.profile],
        "exc_metrics": [_encode_key(m) for m in tk.exc_metrics],
        "inc_metrics": [_encode_key(m) for m in tk.inc_metrics],
        "default_metric": _encode_key(tk.default_metric)
        if tk.default_metric is not None else None,
    }


def thicket_to_json(tk) -> str:
    """Serialize a Thicket to a v2 JSON document (envelope + checksum).

    The serialization is deterministic: save → load → save produces
    byte-identical output.
    """
    payload = thicket_to_payload(tk)
    return json.dumps(
        {"format": FORMAT_V2,
         "checksum": sha256_of(canonical_json(payload)),
         "payload": payload},
        separators=(",", ":"), sort_keys=True)


def _payload_to_thicket(payload: dict):
    from .thicket import Thicket

    graph = Graph.from_literal(payload["graph"])
    nodes = graph.node_order()

    perf_p = payload["performance_data"]
    perf_cols = [_decode_key(c) for c in perf_p["columns"]]
    perf_index = MultiIndex(
        [(nodes[i], pid) for i, pid in perf_p["index"]],
        names=perf_p["index_names"],
    )
    perf = DataFrame(_decode_columns(perf_p, perf_cols),
                     index=perf_index, columns=perf_cols)

    meta_p = payload["metadata"]
    meta_cols = [_decode_key(c) for c in meta_p["columns"]]
    metadata = DataFrame(_decode_columns(meta_p, meta_cols),
                         index=Index(meta_p["index"], name="profile"),
                         columns=meta_cols)

    stats_p = payload["statsframe"]
    stats_cols = [_decode_key(c) for c in stats_p["columns"]]
    statsframe = DataFrame(_decode_columns(stats_p, stats_cols),
                           index=Index([nodes[i] for i in stats_p["index"]],
                                       name="node"),
                           columns=stats_cols)

    default = payload.get("default_metric")
    return Thicket(
        graph, perf, metadata, statsframe=statsframe,
        profiles=payload["profiles"],
        exc_metrics=[_decode_key(m) for m in payload["exc_metrics"]],
        inc_metrics=[_decode_key(m) for m in payload["inc_metrics"]],
        default_metric=_decode_key(default) if default is not None else None,
    )


def thicket_from_json(text: str, source: Any = None):
    """Rebuild a Thicket from :func:`thicket_to_json` output.

    Accepts both the current checksummed ``repro-thicket-v2`` envelope
    and legacy flat ``repro-thicket-v1`` documents.  Every failure mode
    — undecodable JSON, unknown format, checksum mismatch, missing or
    malformed sections — raises :class:`CorruptStoreError` (which is
    also a ``ValueError`` for backward compatibility).
    """
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as e:
        raise CorruptStoreError(
            f"store is not valid JSON (truncated or overwritten?): {e}",
            source=source, stage="load") from e
    if not isinstance(doc, dict):
        raise CorruptStoreError(
            f"store is not a JSON object, got {type(doc).__name__}",
            source=source, stage="load")

    fmt = doc.get("format")
    if fmt == FORMAT_V2:
        payload = doc.get("payload")
        if not isinstance(payload, dict):
            raise CorruptStoreError("v2 store has no payload object",
                                    source=source)
        stored = doc.get("checksum")
        actual = sha256_of(canonical_json(payload))
        if stored != actual:
            raise CorruptStoreError(
                f"checksum mismatch: stored {stored!r}, computed "
                f"{actual!r} — the store was modified or corrupted "
                f"after it was written", source=source)
    elif fmt == FORMAT_V1:
        payload = doc  # flat legacy layout, no checksum to verify
    else:
        raise CorruptStoreError(
            f"not a repro thicket store (format={fmt!r}; expected "
            f"{FORMAT_V1!r} or {FORMAT_V2!r})", source=source, stage="load")

    try:
        return _payload_to_thicket(payload)
    except CorruptStoreError:
        raise
    except (KeyError, IndexError, TypeError, ValueError) as e:
        raise CorruptStoreError(
            f"store payload is structurally invalid: "
            f"{type(e).__name__}: {e}", source=source) from e


def save_thicket(tk, path: str | Path) -> Path:
    """Atomically write *tk* to *path* as a checksummed v2 store.

    The write goes temp-file → fsync → ``os.replace``: a crash at any
    point leaves either the old store or the complete new one.
    """
    path = Path(path)
    try:
        return atomic_write_text(path, thicket_to_json(tk))
    except OSError as e:
        raise PersistenceError(f"cannot write thicket store: {e}",
                               source=path, stage="save") from e


def load_thicket(path: str | Path, verify: bool = False):
    """Load a thicket store, verifying its content checksum.

    With ``verify=True`` the cross-component structural invariants are
    additionally checked (:meth:`Thicket.validate`) and a store whose
    components are inconsistent is rejected with
    :class:`CorruptStoreError`.
    """
    path = Path(path)
    try:
        text = path.read_text()
    except FileNotFoundError as e:
        raise PersistenceError(f"no such thicket store: {path}",
                               source=path, stage="load") from e
    except OSError as e:
        raise PersistenceError(f"cannot read thicket store: {e}",
                               source=path, stage="load") from e
    tk = thicket_from_json(text, source=path)
    if verify:
        report = tk.validate()
        if not report.ok:
            raise CorruptStoreError(
                "store loaded but its components are inconsistent:\n"
                + report.summary(), source=path)
    return tk
