"""Thicket persistence: lossless JSON round trip of all three components.

Analyses are often iterative (the paper's Jupyter workflows); saving a
composed thicket avoids re-reading hundreds of raw profiles.  The
format stores the call graph as a nested literal, node-indexed tables
with positional node references, and the metadata table verbatim.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

import numpy as np

from ..frame import DataFrame, Index, MultiIndex
from ..graph import Graph

__all__ = ["thicket_to_json", "thicket_from_json", "save_thicket",
           "load_thicket"]


def _jsonable(v: Any) -> Any:
    if hasattr(v, "item"):
        v = v.item()
    if isinstance(v, float) and np.isnan(v):
        return None
    return v


def _encode_key(c: Any) -> Any:
    return list(c) if isinstance(c, tuple) else c


def _decode_key(c: Any) -> Any:
    return tuple(c) if isinstance(c, list) else c


def thicket_to_json(tk) -> str:
    """Serialize a Thicket to a JSON string."""
    node_pos = {n: i for i, n in enumerate(tk.graph.node_order())}

    perf = {
        "columns": [_encode_key(c) for c in tk.dataframe.columns],
        "index": [[node_pos[t[0]], _jsonable(t[1])]
                  for t in tk.dataframe.index.values],
        "index_names": list(tk.dataframe.index.names),
        "data": [
            [_jsonable(tk.dataframe.column(c)[i])
             for c in tk.dataframe.columns]
            for i in range(len(tk.dataframe))
        ],
    }
    meta = {
        "columns": [_encode_key(c) for c in tk.metadata.columns],
        "index": [_jsonable(p) for p in tk.metadata.index.values],
        "data": [
            [_jsonable(tk.metadata.column(c)[i]) for c in tk.metadata.columns]
            for i in range(len(tk.metadata))
        ],
    }
    stats_cols = [c for c in tk.statsframe.columns]
    stats = {
        "columns": [_encode_key(c) for c in stats_cols],
        "index": [node_pos[n] for n in tk.statsframe.index.values],
        "data": [
            [_jsonable(tk.statsframe.column(c)[i]) for c in stats_cols]
            for i in range(len(tk.statsframe))
        ],
    }
    payload = {
        "format": "repro-thicket-v1",
        "graph": tk.graph.to_literal(),
        "performance_data": perf,
        "metadata": meta,
        "statsframe": stats,
        "profiles": [_jsonable(p) for p in tk.profile],
        "exc_metrics": [_encode_key(m) for m in tk.exc_metrics],
        "inc_metrics": [_encode_key(m) for m in tk.inc_metrics],
        "default_metric": _encode_key(tk.default_metric)
        if tk.default_metric is not None else None,
    }
    return json.dumps(payload)


def thicket_from_json(text: str):
    """Rebuild a Thicket from :func:`thicket_to_json` output."""
    from .thicket import Thicket

    payload = json.loads(text)
    if payload.get("format") != "repro-thicket-v1":
        raise ValueError("not a repro thicket JSON document")

    graph = Graph.from_literal(payload["graph"])
    nodes = graph.node_order()

    perf_p = payload["performance_data"]
    perf_cols = [_decode_key(c) for c in perf_p["columns"]]
    perf_index = MultiIndex(
        [(nodes[i], pid) for i, pid in perf_p["index"]],
        names=perf_p["index_names"],
    )
    perf = DataFrame(
        {c: [row[j] for row in perf_p["data"]]
         for j, c in enumerate(perf_cols)},
        index=perf_index, columns=perf_cols,
    )

    meta_p = payload["metadata"]
    meta_cols = [_decode_key(c) for c in meta_p["columns"]]
    metadata = DataFrame(
        {c: [row[j] for row in meta_p["data"]]
         for j, c in enumerate(meta_cols)},
        index=Index(meta_p["index"], name="profile"), columns=meta_cols,
    )

    stats_p = payload["statsframe"]
    stats_cols = [_decode_key(c) for c in stats_p["columns"]]
    statsframe = DataFrame(
        {c: [row[j] for row in stats_p["data"]]
         for j, c in enumerate(stats_cols)},
        index=Index([nodes[i] for i in stats_p["index"]], name="node"),
        columns=stats_cols,
    )

    default = payload.get("default_metric")
    return Thicket(
        graph, perf, metadata, statsframe=statsframe,
        profiles=payload["profiles"],
        exc_metrics=[_decode_key(m) for m in payload["exc_metrics"]],
        inc_metrics=[_decode_key(m) for m in payload["inc_metrics"]],
        default_metric=_decode_key(default) if default is not None else None,
    )


def save_thicket(tk, path: str | Path) -> Path:
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(thicket_to_json(tk))
    return path


def load_thicket(path: str | Path):
    return thicket_from_json(Path(path).read_text())
