"""The ``Thicket`` object — the paper's primary contribution (§3).

A Thicket unifies an ensemble of call-tree profiles into three linked
components:

* ``dataframe`` — performance data with a ``(node, profile)``
  MultiIndex, one row per execution of each call-tree node;
* ``metadata``  — one row per profile (build settings + execution
  context), indexed by profile id;
* ``statsframe`` — aggregated statistics, one row per call-tree node,
  filled in by the functions in :mod:`repro.core.stats`.

Profiles are composed on the union of their call trees (computed by
structural matching of labelled trees, see :mod:`repro.graph.union`);
the profile index is either a deterministic hash of the run metadata or
a user-chosen metadata column (§3.2.1).
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Callable, Iterable, Mapping, Sequence

import numpy as np

from ..frame import DataFrame, Index, MultiIndex, concat_rows
from ..graph import Graph, GraphFrame, Node, union_many

__all__ = ["Thicket", "profile_hash"]


def profile_hash(metadata: Mapping[str, Any]) -> int:
    """Deterministic signed 64-bit profile id from run metadata.

    Mirrors the hash ids visible in the paper's metadata tables
    (e.g. ``-5810787656424201390``).
    """
    blob = json.dumps(
        {str(k): str(v) for k, v in metadata.items()}, sort_keys=True
    ).encode()
    digest = hashlib.sha256(blob).digest()
    return int.from_bytes(digest[:8], "big", signed=True)


class Thicket:
    """Ensemble of performance profiles over a unified call tree."""

    def __init__(self, graph: Graph, dataframe: DataFrame, metadata: DataFrame,
                 statsframe: DataFrame | None = None,
                 profiles: Sequence[Any] | None = None,
                 exc_metrics: Sequence[str] | None = None,
                 inc_metrics: Sequence[str] | None = None,
                 default_metric: str | None = None,
                 provenance: Mapping[str, Any] | None = None):
        self.graph = graph
        self.dataframe = dataframe
        self.metadata = metadata
        # ingestion provenance: error policy, dropped-profile list and
        # repaired id collisions (populated by repro.ingest.load_ensemble)
        self.provenance: dict[str, Any] = dict(provenance or {})
        self.exc_metrics = list(exc_metrics or [])
        self.inc_metrics = list(inc_metrics or [])
        self.default_metric = default_metric or (
            self.exc_metrics[0] if self.exc_metrics else None
        )
        if profiles is None:
            profiles = list(metadata.index.values)
        self.profile = list(profiles)
        if statsframe is None:
            statsframe = self._empty_statsframe()
        self.statsframe = statsframe

    def _empty_statsframe(self) -> DataFrame:
        nodes = self.graph.node_order()
        return DataFrame(
            {"name": [n.frame.name for n in nodes]},
            index=Index(nodes, name="node"),
        )

    # ------------------------------------------------------------------
    # construction (§3.2.1 — composing a set of profiles)
    # ------------------------------------------------------------------
    @classmethod
    def from_caliperreader(cls, sources: Iterable[Any] | Any,
                           intersection: bool = False,
                           metadata_key: str | None = None,
                           fill_perfdata: bool = False,
                           on_error: str = "strict") -> "Thicket":
        """Compose Caliper profiles (file paths or GraphFrames) into a Thicket.

        Loading runs through the fault-tolerant ingestion pipeline
        (:func:`repro.ingest.load_ensemble`): payloads are validated
        before graph construction and every failure surfaces as a
        typed :class:`repro.errors.ReproError` naming the offending
        source — never a bare ``KeyError``.

        Parameters
        ----------
        sources:
            One or more ``*.json`` cali profiles and/or GraphFrames.
        intersection:
            Keep only call-tree nodes present in *every* profile
            (default keeps the union).
        metadata_key:
            Use this metadata column as the profile index instead of a
            hash (e.g. ``"problem_size"``); values must be unique.
        fill_perfdata:
            With the union semantics, emit NaN rows for (node, profile)
            pairs where the profile did not visit the node, giving a
            dense table (the xarray-style layout discussed in §6).
        on_error:
            Per-profile error policy: ``"strict"`` raises the first
            error (default); ``"skip"``/``"collect"`` drop bad
            profiles and record them in ``thicket.provenance``
            (``"skip"`` additionally warns per drop).  Use
            :func:`repro.ingest.load_ensemble` directly to also get
            the structured :class:`~repro.ingest.IngestReport`.
        """
        from ..ingest import load_ensemble

        tk, report = load_ensemble(
            sources, on_error=on_error, metadata_key=metadata_key,
            intersection=intersection, fill_perfdata=fill_perfdata)
        if tk is None:
            from ..errors import CompositionError

            raise CompositionError(
                "no profiles could be loaded:\n" + report.summary())
        return tk

    @classmethod
    def _compose(cls, gfs: Sequence[GraphFrame], profile_ids: Sequence[Any],
                 intersection: bool = False, fill_perfdata: bool = False,
                 provenance: Mapping[str, Any] | None = None) -> "Thicket":
        """Compose already-loaded GraphFrames under resolved profile ids.

        The structural core shared by :meth:`from_caliperreader` and
        the ingestion pipeline; ``profile_ids`` must already be unique
        (the pipeline repairs or rejects collisions before calling).
        """
        from ..errors import ProfileConflictError

        gfs = list(gfs)
        profile_ids = list(profile_ids)
        if not gfs:
            raise ProfileConflictError("no profiles given")
        if len(set(profile_ids)) != len(profile_ids):
            raise ProfileConflictError(
                "profile ids are not unique; choose a different metadata_key"
            )

        union_graph, maps = union_many([gf.graph for gf in gfs])

        # performance data rows, re-keyed to union nodes
        per_profile: list[DataFrame] = []
        for gf, mapping, pid in zip(gfs, maps, profile_ids):
            df = gf.dataframe.copy()
            tuples = [(mapping[n], pid) for n in df.index.values]
            df.index = MultiIndex(tuples, names=["node", "profile"])
            per_profile.append(df)
        perf = concat_rows(per_profile)

        node_filter: set[Node] | None = None
        if intersection:
            counts: dict[Node, int] = {}
            for mapping in maps:
                for un in set(mapping.values()):
                    counts[un] = counts.get(un, 0) + 1
            node_filter = {n for n, c in counts.items() if c == len(gfs)}

        if fill_perfdata:
            nodes = [
                n for n in union_graph.node_order()
                if node_filter is None or n in node_filter
            ]
            full = MultiIndex(
                [(n, p) for n in nodes for p in profile_ids],
                names=["node", "profile"],
            )
            perf = perf.reindex(full)
            name_fix = [t[0].frame.name for t in perf.index.values]
            perf["name"] = name_fix
        else:
            perf = _sort_perfdata(perf, union_graph, profile_ids)
            if node_filter is not None:
                mask = np.fromiter(
                    (t[0] in node_filter for t in perf.index.values),
                    dtype=bool, count=len(perf),
                )
                perf = perf[mask]

        if node_filter is not None:
            from ..graph.squash import squash_graph

            union_graph, node_map = squash_graph(union_graph, node_filter)
            perf.index = MultiIndex(
                [(node_map[t[0]], t[1]) for t in perf.index.values],
                names=["node", "profile"],
            )

        # metadata table
        meta_records = [dict(gf.metadata) for gf in gfs]
        meta_cols: dict[str, None] = {}
        for rec in meta_records:
            for k in rec:
                meta_cols.setdefault(k, None)
        metadata = DataFrame(
            {k: [rec.get(k) for rec in meta_records] for k in meta_cols},
            index=Index(profile_ids, name="profile"),
        )

        exc: dict[str, None] = {}
        inc: dict[str, None] = {}
        for gf in gfs:
            for m in gf.exc_metrics:
                exc.setdefault(m, None)
            for m in gf.inc_metrics:
                inc.setdefault(m, None)
        default = next(
            (gf.default_metric for gf in gfs if gf.default_metric), None
        )
        return cls(union_graph, perf, metadata, profiles=profile_ids,
                   exc_metrics=list(exc), inc_metrics=list(inc),
                   default_metric=default, provenance=provenance)

    # ------------------------------------------------------------------
    # basic API
    # ------------------------------------------------------------------
    @property
    def performance_cols(self) -> list:
        """Numeric metric columns of the performance data table."""
        out = []
        for c in self.dataframe.columns:
            last = c[-1] if isinstance(c, tuple) else c
            if last == "name":
                continue
            if self.dataframe.column(c).dtype.kind in "if":
                out.append(c)
        return out

    def __len__(self) -> int:
        return len(self.dataframe)

    def __repr__(self) -> str:
        return (f"Thicket(profiles={len(self.profile)}, nodes={len(self.graph)}, "
                f"rows={len(self.dataframe)})")

    def copy(self) -> "Thicket":
        """Deep-copy the tables; share the (immutable) graph nodes."""
        return Thicket(self.graph, self.dataframe.copy(), self.metadata.copy(),
                       statsframe=self.statsframe.copy(),
                       profiles=list(self.profile),
                       exc_metrics=list(self.exc_metrics),
                       inc_metrics=list(self.inc_metrics),
                       default_metric=self.default_metric,
                       provenance=dict(self.provenance))

    def tree(self, metric_column: str | None = None, precision: int = 3,
             color: bool = False) -> str:
        """Render the unified call tree annotated with a statsframe or
        per-profile-mean metric."""
        from ..viz.tree import render_tree

        metric = metric_column
        if metric is not None and metric in self.statsframe:
            return render_tree(self.graph, self.statsframe, metric,
                               precision=precision, color=color)
        metric = metric or self.default_metric
        if metric is None or metric not in self.dataframe:
            return render_tree(self.graph, self.statsframe, None,
                               precision=precision, color=color)
        means = self.dataframe.groupby(level="node").agg({metric: "mean"})
        return render_tree(self.graph, means, metric,
                           precision=precision, color=color)

    # ------------------------------------------------------------------
    # manipulation (§4.1) — implemented in sibling modules
    # ------------------------------------------------------------------
    def filter_metadata(self, predicate: Callable[[dict], bool]) -> "Thicket":
        """Keep only profiles whose metadata row satisfies *predicate*."""
        from .filtering import filter_metadata

        return filter_metadata(self, predicate)

    def filter_stats(self, predicate: Callable[[dict], bool]) -> "Thicket":
        """Keep only graph nodes whose statsframe row satisfies *predicate*."""
        from .filtering import filter_stats

        return filter_stats(self, predicate)

    def filter_profile(self, profiles: Sequence[Any]) -> "Thicket":
        """Keep only the listed profile ids (§4.1.1)."""
        from .filtering import filter_profile

        return filter_profile(self, profiles)

    def groupby(self, by: str | Sequence[str]):
        """Partition into sub-thickets by metadata column(s) (§4.1.2)."""
        from .groupby import groupby_metadata

        return groupby_metadata(self, by)

    def query(self, matcher, squash: bool = True,
              validate: bool = True) -> "Thicket":
        """Filter to the call paths matched by *matcher* (§4.1.3).

        *matcher* may be a :class:`~repro.query.QueryMatcher`, a
        string-dialect query (``'MATCH (".", p) WHERE p."name" = …'``),
        or an object-dialect spec list.

        With ``validate=True`` (the default) the query is statically
        checked against this thicket first —
        :func:`repro.query.validate_query` — so a misspelled metric,
        a type-mismatched predicate, or an unsatisfiable quantifier
        sequence raises :class:`~repro.errors.QueryValidationError`
        (with did-you-mean suggestions) *before* any matching work,
        instead of silently matching nothing.  ``validate=False``
        restores the old fail-late behaviour.
        """
        from ..query import QueryMatcher, parse_string_dialect
        from .querying import query_thicket

        if isinstance(matcher, str):
            matcher = parse_string_dialect(matcher)
        elif isinstance(matcher, (list, tuple)):
            matcher = QueryMatcher.from_spec(matcher)
        if validate:
            from ..query import validate_query

            validate_query(matcher, self)
        return query_thicket(self, matcher, squash=squash)

    # ------------------------------------------------------------------
    # metadata → columns and derived data
    # ------------------------------------------------------------------
    def metadata_column_to_perfdata(self, column: str,
                                    overwrite: bool = False) -> None:
        """Broadcast a metadata column onto performance-data rows
        (how problem size becomes a per-row key in Fig. 4)."""
        if column in self.dataframe and not overwrite:
            raise ValueError(f"column {column!r} already in performance data")
        meta = {
            p: v for p, v in zip(self.metadata.index.values,
                                 self.metadata.column(column))
        }
        self.dataframe[column] = [
            meta.get(t[1]) for t in self.dataframe.index.values
        ]

    def add_ncu(self, ncu_report: DataFrame, prefix: str | None = None) -> None:
        """Attach NCU per-kernel metrics, matching kernels to node names.

        Metrics are broadcast to every (node, profile) row whose node
        name equals the kernel name (Fig. 15's "GPU Nsight Compute"
        column group).
        """
        by_kernel = {
            k: {m: ncu_report.column(m)[i] for m in ncu_report.columns}
            for i, k in enumerate(ncu_report.index.values)
        }
        names = [t[0].frame.name for t in self.dataframe.index.values]
        for metric in ncu_report.columns:
            key = (prefix, metric) if prefix else metric
            self.dataframe[key] = [
                by_kernel.get(nm, {}).get(metric, np.nan) for nm in names
            ]

    # ------------------------------------------------------------------
    # persistence and display conveniences
    # ------------------------------------------------------------------
    def to_json(self) -> str:
        """Serialize to the checksummed v2 store document (a string)."""
        from .io import thicket_to_json

        return thicket_to_json(self)

    @classmethod
    def from_json(cls, text: str) -> "Thicket":
        """Rebuild from :meth:`to_json` output (v1 or v2 accepted)."""
        from .io import thicket_from_json

        return thicket_from_json(text)

    def save(self, path) -> Path:
        """Atomically write the checksummed store to *path*."""
        from .io import save_thicket

        return save_thicket(self, path)

    @classmethod
    def load(cls, path, verify: bool = False) -> "Thicket":
        """Load a store; ``verify=True`` also checks structural invariants."""
        from .io import load_thicket

        return load_thicket(path, verify=verify)

    def validate(self, repair: bool = False):
        """Check the cross-component structural invariants.

        Returns a :class:`~repro.core.validate.ValidationReport`; with
        ``repair=True`` the repairable violations (stale metric lists,
        duplicate index entries, orphaned perf/stats rows, stale
        profile list) are fixed in place and recorded in the report.
        """
        from .validate import validate_thicket

        return validate_thicket(self, repair=repair)

    def display_heatmap(self, columns=None, svg_path=None, **kwargs) -> str:
        """Render the statsframe as a node×column heatmap (text/SVG)."""
        from .display import display_heatmap

        return display_heatmap(self, columns=columns, svg_path=svg_path,
                               **kwargs)

    def display_histogram(self, node_name: str, column, **kwargs) -> str:
        """Render the per-profile metric distribution at one node."""
        from .display import display_histogram

        return display_histogram(self, node_name, column, **kwargs)

    def get_node(self, name: str) -> Node:
        """First node in traversal order with the given frame name."""
        node = self.graph.find(name)
        if node is None:
            raise KeyError(f"no node named {name!r}")
        return node

    def get_unique_metadata(self) -> dict[str, list]:
        """Column → sorted unique values of the metadata table.

        The "quickly inspect which simulation parameters are present"
        step of §3.2.1.
        """
        from ..frame.index import sort_positions

        out: dict[str, list] = {}
        for col in self.metadata.columns:
            values = []
            seen: set = set()
            for v in self.metadata.column(col):
                key = v.item() if hasattr(v, "item") else v
                if key not in seen:
                    seen.add(key)
                    values.append(key)
            out[str(col)] = [values[i] for i in sort_positions(values)]
        return out

    def intersection(self) -> "Thicket":
        """Keep only call-tree nodes measured in *every* profile.

        Post-hoc version of ``from_caliperreader(intersection=True)``
        for thickets that were composed with union semantics.
        """
        from ..graph.squash import squash_graph

        counts: dict[Node, set] = {}
        for t in self.dataframe.index.values:
            counts.setdefault(t[0], set()).add(t[1])
        full = set(self.profile)
        keep = {n for n, profs in counts.items() if profs == full}

        new_graph, node_map = squash_graph(self.graph, keep)
        mask = np.fromiter(
            (t[0] in keep for t in self.dataframe.index.values),
            dtype=bool, count=len(self.dataframe),
        )
        perf = self.dataframe[mask]
        perf.index = MultiIndex(
            [(node_map[t[0]], t[1]) for t in perf.index.values],
            names=["node", "profile"],
        )
        return Thicket(new_graph, perf, self.metadata.copy(),
                       profiles=list(self.profile),
                       exc_metrics=list(self.exc_metrics),
                       inc_metrics=list(self.inc_metrics),
                       default_metric=self.default_metric)

    def unify_statsframe_index(self) -> None:
        """Rebuild the statsframe skeleton after structural changes."""
        self.statsframe = self._empty_statsframe()


def _sort_perfdata(perf: DataFrame, graph: Graph, profile_ids: list) -> DataFrame:
    """Order rows by (graph pre-order, profile-id appearance order)."""
    node_rank = {n: i for i, n in enumerate(graph.traverse())}
    prof_rank = {p: i for i, p in enumerate(profile_ids)}
    keys = [
        (node_rank.get(t[0], len(node_rank)), prof_rank.get(t[1], len(prof_rank)))
        for t in perf.index.values
    ]
    order = sorted(range(len(keys)), key=keys.__getitem__)
    return perf.take(order)


