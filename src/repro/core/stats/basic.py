"""Built-in aggregated statistics (§4.2.1).

The paper lists variance, standard deviation, maximum and minimum,
percentiles, correlation coefficient, mean, and median as Thicket's
built-in order-reduction functions; all are implemented here.  Each
function appends columns to ``tk.statsframe`` and returns the created
column keys.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from .calc import apply_nodewise, grouped_values, resolve_columns, suffix_key

__all__ = [
    "mean",
    "median",
    "minimum",
    "maximum",
    "std",
    "variance",
    "sum_profiles",
    "percentiles",
    "correlation_nodewise",
    "zscore",
    "check_normality",
    "boxplot_stats",
]


def mean(tk, columns: Sequence[Hashable] | None = None) -> list[Hashable]:
    """Per-node mean across profiles."""
    return apply_nodewise(tk, columns, "mean", np.mean)


def median(tk, columns: Sequence[Hashable] | None = None) -> list[Hashable]:
    """Per-node median across profiles."""
    return apply_nodewise(tk, columns, "median", np.median)


def minimum(tk, columns: Sequence[Hashable] | None = None) -> list[Hashable]:
    """Per-node minimum across profiles."""
    return apply_nodewise(tk, columns, "min", np.min)


def maximum(tk, columns: Sequence[Hashable] | None = None) -> list[Hashable]:
    """Per-node maximum across profiles."""
    return apply_nodewise(tk, columns, "max", np.max)


def std(tk, columns: Sequence[Hashable] | None = None) -> list[Hashable]:
    """Per-node sample standard deviation across profiles."""
    return apply_nodewise(
        tk, columns, "std",
        lambda a: float(np.std(a, ddof=1)) if len(a) > 1 else 0.0,
    )


def variance(tk, columns: Sequence[Hashable] | None = None) -> list[Hashable]:
    """Per-node sample variance across profiles."""
    return apply_nodewise(
        tk, columns, "var",
        lambda a: float(np.var(a, ddof=1)) if len(a) > 1 else 0.0,
    )


def sum_profiles(tk, columns: Sequence[Hashable] | None = None) -> list[Hashable]:
    """Per-node sum across profiles."""
    return apply_nodewise(tk, columns, "sum", np.sum)


def percentiles(tk, columns: Sequence[Hashable] | None = None,
                quantiles: Sequence[float] = (0.25, 0.50, 0.75)
                ) -> list[Hashable]:
    """Per-node percentiles; one statsframe column per quantile.

    Column names follow Thicket: ``<col>_percentiles_<q*100>``.
    """
    created: list[Hashable] = []
    for q in quantiles:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile {q} outside [0, 1]")
        created.extend(apply_nodewise(
            tk, columns, f"percentiles_{int(round(q * 100))}",
            lambda a, q=q: float(np.percentile(a, q * 100.0)),
        ))
    return created


def correlation_nodewise(tk, column1: Hashable, column2: Hashable,
                         correlation: str = "pearson") -> Hashable:
    """Per-node correlation coefficient between two metrics across profiles.

    Supports pearson and spearman.  Output column:
    ``<col1>_vs_<col2> <method>``.
    """
    from scipy import stats as sps

    _, arrays1 = grouped_values(tk, column1)
    _, arrays2 = grouped_values(tk, column2)
    values = []
    for a, b in zip(arrays1, arrays2):
        n = min(len(a), len(b))
        if n < 2:
            values.append(float("nan"))
            continue
        a, b = a[:n], b[:n]
        if np.std(a) == 0 or np.std(b) == 0:
            values.append(float("nan"))
            continue
        if correlation == "pearson":
            r = sps.pearsonr(a, b).statistic
        elif correlation == "spearman":
            r = sps.spearmanr(a, b).statistic
        else:
            raise ValueError(f"unknown correlation {correlation!r}")
        values.append(float(r))
    name1 = column1[-1] if isinstance(column1, tuple) else column1
    name2 = column2[-1] if isinstance(column2, tuple) else column2
    out_key = f"{name1}_vs_{name2} {correlation}"
    if isinstance(column1, tuple):
        out_key = column1[:-1] + (out_key,)
    tk.statsframe[out_key] = values
    return out_key


def zscore(tk, columns: Sequence[Hashable] | None = None) -> list[Hashable]:
    """Standardize metrics *within the performance data* (per column).

    Unlike the reductions above this adds columns to ``tk.dataframe``
    (one z-scored value per row), useful before clustering.
    """
    from ...frame.ops import numeric_values

    created = []
    for col in resolve_columns(tk, columns):
        data = tk.dataframe.column(col).astype(np.float64)
        clean = numeric_values(data)
        mu = float(np.mean(clean)) if len(clean) else 0.0
        sigma = float(np.std(clean)) if len(clean) else 1.0
        sigma = sigma or 1.0
        out_key = suffix_key(col, "zscore")
        tk.dataframe[out_key] = (data - mu) / sigma
        created.append(out_key)
    return created


def check_normality(tk, columns: Sequence[Hashable] | None = None,
                    alpha: float = 0.05) -> list[Hashable]:
    """Shapiro-Wilk normality check per node (True = consistent with normal)."""
    from scipy import stats as sps

    created = []
    for col in resolve_columns(tk, columns):
        _, arrays = grouped_values(tk, col)
        flags = []
        for a in arrays:
            if len(a) < 3 or np.std(a) == 0:
                flags.append(None)
                continue
            flags.append(bool(sps.shapiro(a).pvalue > alpha))
        out_key = suffix_key(col, "normality")
        tk.statsframe[out_key] = flags
        created.append(out_key)
    return created


def boxplot_stats(tk, columns: Sequence[Hashable] | None = None,
                  whisker: float = 1.5) -> list[Hashable]:
    """Tukey boxplot components per node: q1/q3/iqr/lowerfence/upperfence."""
    created: list[Hashable] = []
    for col in resolve_columns(tk, columns):
        _, arrays = grouped_values(tk, col)
        comps = {"q1": [], "q3": [], "iqr": [], "lowerfence": [], "upperfence": []}
        for a in arrays:
            if not len(a):
                for v in comps.values():
                    v.append(float("nan"))
                continue
            q1, q3 = np.percentile(a, [25, 75])
            iqr = q3 - q1
            comps["q1"].append(float(q1))
            comps["q3"].append(float(q3))
            comps["iqr"].append(float(iqr))
            comps["lowerfence"].append(float(q1 - whisker * iqr))
            comps["upperfence"].append(float(q3 + whisker * iqr))
        for part, values in comps.items():
            out_key = suffix_key(col, part)
            tk.statsframe[out_key] = values
            created.append(out_key)
    return created
