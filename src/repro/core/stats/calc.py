"""Shared machinery for aggregated statistics (§4.2.1).

Every statistics function reduces the performance-data rows of each
call-tree node across profiles and appends the result to the thicket's
``statsframe`` under ``"<column>_<stat>"`` (tuple columns keep their
header level: ``("CPU", "time (exc)_std")``), matching the naming in
the paper's Fig. 9 (``Retiring_std``, ``time (exc)_std``).
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Sequence

import numpy as np

from ...frame.ops import numeric_values
from ...obs import counter as obs_counter
from ...obs import span as obs_span

__all__ = ["apply_nodewise", "suffix_key", "resolve_columns", "grouped_values"]


def suffix_key(col: Hashable, suffix: str) -> Hashable:
    """``time (exc)`` + ``std`` → ``time (exc)_std`` (tuple-aware)."""
    if isinstance(col, tuple):
        return col[:-1] + (f"{col[-1]}_{suffix}",)
    return f"{col}_{suffix}"


def resolve_columns(tk, columns: Sequence[Hashable] | None) -> list[Hashable]:
    """Default to every numeric metric column when none are given."""
    if columns is None:
        return tk.performance_cols
    missing = [c for c in columns if c not in tk.dataframe]
    if missing:
        raise KeyError(f"columns not in performance data: {missing!r}")
    return list(columns)


def grouped_values(tk, column: Hashable,
                   drop_nonfinite: bool = True) -> tuple[list, list[np.ndarray]]:
    """Per-node float arrays of a metric across profiles.

    Returns ``(nodes, arrays)`` ordered like the statsframe index, with
    missing values dropped per node.  Non-finite values (``±inf`` from
    corrupt or overflowed metrics) are treated as missing by default so
    sparse partial-ensemble tables degrade gracefully instead of
    propagating ``inf`` through every reduction.
    """
    obs_counter("stats.grouped_values")
    positions: dict[Any, list[int]] = {}
    for i, t in enumerate(tk.dataframe.index.values):
        positions.setdefault(t[0], []).append(i)
    col = tk.dataframe.column(column)
    nodes = list(tk.statsframe.index.values)
    arrays = []
    for node in nodes:
        pos = positions.get(node, [])
        arrays.append(
            numeric_values(col[pos], drop_nonfinite=drop_nonfinite)
            if pos else np.empty(0))
    return nodes, arrays


def apply_nodewise(tk, columns: Sequence[Hashable] | None, suffix: str,
                   reducer: Callable[[np.ndarray], float]) -> list[Hashable]:
    """Reduce each column per node and append to the statsframe.

    Returns the list of created statsframe column keys.
    """
    created = []
    cols = resolve_columns(tk, columns)
    with obs_span("stats.apply_nodewise", stat=suffix, columns=len(cols)):
        for col in cols:
            _, arrays = grouped_values(tk, col)
            out_key = suffix_key(col, suffix)
            tk.statsframe[out_key] = [
                reducer(a) if len(a) else float("nan") for a in arrays
            ]
            created.append(out_key)
    return created
