"""``repro.core.stats`` — built-in aggregated statistics (§4.2.1)."""

from .basic import (
    boxplot_stats,
    check_normality,
    correlation_nodewise,
    maximum,
    mean,
    median,
    minimum,
    percentiles,
    std,
    sum_profiles,
    variance,
    zscore,
)
from .calc import apply_nodewise, grouped_values, suffix_key
from .imbalance import load_imbalance

__all__ = [
    "mean",
    "median",
    "minimum",
    "maximum",
    "std",
    "variance",
    "sum_profiles",
    "percentiles",
    "correlation_nodewise",
    "zscore",
    "check_normality",
    "boxplot_stats",
    "load_imbalance",
    "apply_nodewise",
    "grouped_values",
    "suffix_key",
]
