"""Load-imbalance analysis.

Hatchet's flagship single-run analysis ("computing load imbalance
across nodes in a single run", §6 of the paper) lifted to ensembles:
Caliper records per-rank aggregates (avg/max/min time per rank); the
imbalance factor per (node, profile) is ``max / avg`` (1.0 = perfectly
balanced), and the statsframe carries its ensemble mean and worst case.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from .calc import grouped_values, suffix_key

__all__ = ["load_imbalance"]


def load_imbalance(tk, avg_column: Hashable = "Avg time/rank",
                   max_column: Hashable = "Max time/rank") -> list[Hashable]:
    """Compute per-row and per-node load-imbalance factors.

    Adds ``"<avg_column>_imbalance"`` to the performance data (one
    value per (node, profile) row) and two statsframe columns with its
    per-node mean and max across profiles.  Returns the created
    statsframe column keys.
    """
    for col in (avg_column, max_column):
        if col not in tk.dataframe:
            raise KeyError(f"column {col!r} not in performance data")

    avg = tk.dataframe.column(avg_column).astype(np.float64)
    mx = tk.dataframe.column(max_column).astype(np.float64)
    with np.errstate(invalid="ignore", divide="ignore"):
        factor = np.where(avg > 0, mx / avg, np.nan)
    row_key = suffix_key(avg_column, "imbalance")
    tk.dataframe[row_key] = factor

    _, arrays = grouped_values(tk, row_key)
    mean_key = suffix_key(row_key, "mean")
    max_key = suffix_key(row_key, "max")
    tk.statsframe[mean_key] = [
        float(np.mean(a)) if len(a) else float("nan") for a in arrays
    ]
    tk.statsframe[max_key] = [
        float(np.max(a)) if len(a) else float("nan") for a in arrays
    ]
    return [mean_key, max_key]
