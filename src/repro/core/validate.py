"""Structural invariant validation for :class:`~repro.core.Thicket`.

A thicket is three linked components plus bookkeeping lists, and every
operation (ingest, filter, groupby, concat, load) must preserve the
cross-component invariants:

* every node in the performance-data and statsframe indices belongs to
  the call graph;
* the metadata index, the performance-data profile level, and
  ``tk.profile`` describe the same profile set;
* ``exc_metrics`` / ``inc_metrics`` / ``default_metric`` name existing
  performance-data columns;
* no index has duplicate entries.

:func:`validate_thicket` checks them all and returns a structured
:class:`ValidationReport` instead of raising, so callers can decide
whether an inconsistency is fatal (``load_thicket(..., verify=True)``
treats it as store corruption) or repairable (``repair=True`` fixes
the subset that can be fixed without inventing data: stale metric
lists, duplicate index entries, orphaned perf/stats rows, and a stale
profile list).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["ValidationIssue", "ValidationReport", "validate_thicket"]


@dataclass(frozen=True)
class ValidationIssue:
    """One violated invariant."""

    code: str          # stable machine-readable id, e.g. "perf-node-unknown"
    message: str       # human-readable description with counts/examples
    repairable: bool   # whether repair=True can fix it without inventing data
    count: int = 1     # how many entries are affected

    def describe(self) -> str:
        """One-line ``[code] message (repairable?)`` rendering."""
        tag = "repairable" if self.repairable else "NOT repairable"
        return f"[{self.code}] {self.message} ({tag})"


@dataclass
class ValidationReport:
    """Outcome of one :func:`validate_thicket` run."""

    issues: list = field(default_factory=list)    # ValidationIssue
    repaired: list = field(default_factory=list)  # str descriptions

    @property
    def ok(self) -> bool:
        """True iff no invariant is violated (after any repairs)."""
        return not self.issues

    @property
    def repairable(self) -> bool:
        """True iff every remaining issue could be fixed by repair=True."""
        return all(i.repairable for i in self.issues)

    def summary(self) -> str:
        """Multi-line human-readable report of issues and repairs."""
        if self.ok and not self.repaired:
            return "validate: ok (all structural invariants hold)"
        lines = [f"validate: {len(self.issues)} issue(s), "
                 f"{len(self.repaired)} repair(s) applied"]
        for issue in self.issues:
            lines.append(f"  ! {issue.describe()}")
        for fix in self.repaired:
            lines.append(f"  ~ repaired: {fix}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-ready dict (used by ``repro validate --json``)."""
        return {
            "ok": self.ok,
            "issues": [
                {"code": i.code, "message": i.message,
                 "repairable": i.repairable, "count": i.count}
                for i in self.issues
            ],
            "repaired": list(self.repaired),
        }


def _examples(values, limit: int = 3) -> str:
    shown = ", ".join(repr(v) for v in list(values)[:limit])
    return shown + (", ..." if len(values) > limit else "")


def _duplicates(values) -> list:
    seen: set = set()
    dups = []
    for v in values:
        key = (v.item() if hasattr(v, "item") else v)
        if key in seen:
            dups.append(key)
        else:
            seen.add(key)
    return dups


def validate_thicket(tk, repair: bool = False) -> ValidationReport:
    """Check (and optionally repair) *tk*'s cross-component invariants.

    With ``repair=True`` the repairable violations are fixed in place
    (*tk* is mutated) and recorded in ``report.repaired``; the report
    then only lists what could not be fixed.
    """
    import numpy as np

    report = ValidationReport()
    graph_nodes = set(tk.graph.traverse())

    def issue(code, message, repairable, count=1):
        report.issues.append(
            ValidationIssue(code=code, message=message,
                            repairable=repairable, count=count))

    # -- performance data: nodes must live in the graph ----------------
    perf_tuples = list(tk.dataframe.index.values)
    orphan_rows = [i for i, t in enumerate(perf_tuples)
                   if t[0] not in graph_nodes]
    if orphan_rows:
        if repair:
            keep = np.ones(len(perf_tuples), dtype=bool)
            keep[orphan_rows] = False
            tk.dataframe = tk.dataframe[keep]
            report.repaired.append(
                f"dropped {len(orphan_rows)} performance row(s) whose "
                f"node is not in the graph")
            perf_tuples = list(tk.dataframe.index.values)
        else:
            issue("perf-node-unknown",
                  f"{len(orphan_rows)} performance row(s) reference "
                  f"node(s) not present in the graph", True,
                  count=len(orphan_rows))

    # -- performance data: no duplicate (node, profile) entries --------
    dup_perf = _duplicates(
        (t[0], t[1].item() if hasattr(t[1], "item") else t[1])
        for t in perf_tuples)
    if dup_perf:
        if repair:
            seen: set = set()
            keep = np.ones(len(perf_tuples), dtype=bool)
            for i, t in enumerate(perf_tuples):
                key = (t[0], t[1].item() if hasattr(t[1], "item")
                       else t[1])
                if key in seen:
                    keep[i] = False
                seen.add(key)
            tk.dataframe = tk.dataframe[keep]
            report.repaired.append(
                f"dropped {len(dup_perf)} duplicate (node, profile) "
                f"performance row(s), keeping the first of each")
        else:
            issue("perf-index-duplicate",
                  f"{len(dup_perf)} duplicate (node, profile) "
                  f"entry(ies) in the performance data index", True,
                  count=len(dup_perf))

    # -- metadata: unique profile index --------------------------------
    meta_profiles = list(tk.metadata.index.values)
    dup_meta = _duplicates(meta_profiles)
    if dup_meta:
        if repair:
            seen = set()
            keep = np.ones(len(meta_profiles), dtype=bool)
            for i, p in enumerate(meta_profiles):
                key = p.item() if hasattr(p, "item") else p
                if key in seen:
                    keep[i] = False
                seen.add(key)
            tk.metadata = tk.metadata[keep]
            report.repaired.append(
                f"dropped {len(dup_meta)} duplicate metadata row(s): "
                f"{_examples(dup_meta)}")
            meta_profiles = list(tk.metadata.index.values)
        else:
            issue("metadata-index-duplicate",
                  f"duplicate profile id(s) in the metadata index: "
                  f"{_examples(dup_meta)}", True, count=len(dup_meta))

    # -- profile sets: perf ⊆ metadata, tk.profile == metadata ---------
    meta_set = {p.item() if hasattr(p, "item") else p
                for p in meta_profiles}
    perf_profiles = {t[1].item() if hasattr(t[1], "item") else t[1]
                     for t in tk.dataframe.index.values}
    unknown_profiles = perf_profiles - meta_set
    if unknown_profiles:
        # metadata for these rows does not exist anywhere; dropping the
        # rows would silently discard measurements, so never auto-repair
        issue("perf-profile-unknown",
              f"performance rows reference profile(s) absent from the "
              f"metadata table: {_examples(sorted(unknown_profiles, key=repr))}",
              False, count=len(unknown_profiles))

    profile_list = {p.item() if hasattr(p, "item") else p
                    for p in tk.profile}
    if profile_list != meta_set:
        extra = profile_list - meta_set
        missing = meta_set - profile_list
        if repair:
            tk.profile = list(tk.metadata.index.values)
            report.repaired.append(
                "reset tk.profile to the metadata index "
                f"(+{len(missing)}/-{len(extra)})")
        else:
            extra_s = _examples(sorted(extra, key=repr)) or "none"
            missing_s = _examples(sorted(missing, key=repr)) or "none"
            issue("profile-list-mismatch",
                  f"tk.profile disagrees with the metadata index "
                  f"(extra: {extra_s}; missing: {missing_s})",
                  True, count=len(extra) + len(missing))

    # -- statsframe: nodes in graph, no duplicates ---------------------
    stats_nodes = list(tk.statsframe.index.values)
    stats_orphans = [n for n in stats_nodes if n not in graph_nodes]
    stats_dups = _duplicates(stats_nodes)
    if stats_orphans or stats_dups:
        if repair:
            tk.unify_statsframe_index()
            report.repaired.append(
                f"rebuilt the statsframe skeleton "
                f"({len(stats_orphans)} orphaned node(s), "
                f"{len(stats_dups)} duplicate(s); "
                f"computed statistics were discarded)")
        else:
            if stats_orphans:
                issue("stats-node-unknown",
                      f"{len(stats_orphans)} statsframe row(s) reference "
                      f"node(s) not present in the graph", True,
                      count=len(stats_orphans))
            if stats_dups:
                issue("stats-index-duplicate",
                      f"{len(stats_dups)} duplicate node(s) in the "
                      f"statsframe index", True, count=len(stats_dups))

    # -- metric bookkeeping: exc/inc ⊆ columns, default exists ---------
    columns = set(tk.dataframe.columns)
    for attr, code in (("exc_metrics", "exc-metric-missing"),
                       ("inc_metrics", "inc-metric-missing")):
        metrics = getattr(tk, attr)
        stale = [m for m in metrics if m not in columns]
        if stale:
            if repair:
                setattr(tk, attr, [m for m in metrics if m in columns])
                report.repaired.append(
                    f"removed stale {attr}: {_examples(stale)}")
            else:
                issue(code,
                      f"{attr} name(s) missing from the performance "
                      f"data columns: {_examples(stale)}", True,
                      count=len(stale))

    if (tk.default_metric is not None
            and tk.default_metric not in columns
            and tk.default_metric not in tk.statsframe.columns):
        if repair:
            old = tk.default_metric
            tk.default_metric = tk.exc_metrics[0] if tk.exc_metrics else (
                tk.inc_metrics[0] if tk.inc_metrics else None)
            report.repaired.append(
                f"reset default_metric {old!r} -> {tk.default_metric!r}")
        else:
            issue("default-metric-missing",
                  f"default_metric {tk.default_metric!r} is not a "
                  f"performance or stats column", True)

    return report
