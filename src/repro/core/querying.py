"""Call-path querying of Thickets (§4.1.3, Fig. 8).

The query runs over the unified call tree; each predicate sees the
node's *ensemble row view* — a mapping from column name to a Series of
per-profile values — so the paper's idiom works verbatim::

    QueryMatcher().match(".", lambda row: row["name"].apply(
        lambda x: x == "Base_CUDA").all())

Matched nodes are kept; the graph is squashed so children of dropped
nodes re-attach to their nearest kept ancestor.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..frame import Series
from ..graph import Node
from ..query import QueryMatcher

__all__ = ["query_thicket"]


def query_thicket(tk, matcher: QueryMatcher, squash: bool = True):
    """Apply *matcher* to *tk*; returns a new Thicket of matched paths."""
    from ..graph.squash import squash_graph
    from ..frame import MultiIndex
    from .thicket import Thicket

    # Build per-node row positions once: node -> positions in perf data.
    positions: dict[Node, list[int]] = {}
    for i, t in enumerate(tk.dataframe.index.values):
        positions.setdefault(t[0], []).append(i)

    columns = tk.dataframe.columns

    class _RowView:
        """Lazy mapping column -> Series of the node's per-profile values."""

        __slots__ = ("_pos",)

        def __init__(self, pos: list[int]):
            self._pos = pos

        def __getitem__(self, col: Any) -> Series:
            if col not in tk.dataframe:
                raise KeyError(col)
            arr = tk.dataframe.column(col)
            return Series([arr[i] for i in self._pos], name=col)

        def __contains__(self, col: Any) -> bool:
            return col in tk.dataframe

        def keys(self):
            return list(columns)

    def row_view(node: Node):
        return _RowView(positions.get(node, []))

    matched = matcher.apply(tk.graph, row_view)
    matched_set = set(matched)

    perf_mask = np.fromiter(
        (t[0] in matched_set for t in tk.dataframe.index.values),
        dtype=bool, count=len(tk.dataframe),
    )
    new_perf = tk.dataframe[perf_mask]

    if squash:
        new_graph, node_map = squash_graph(tk.graph, matched_set)
        new_perf.index = MultiIndex(
            [(node_map[t[0]], t[1]) for t in new_perf.index.values],
            names=["node", "profile"],
        )
    else:
        new_graph = tk.graph

    out = Thicket(new_graph, new_perf, tk.metadata.copy(),
                  profiles=list(tk.profile),
                  exc_metrics=list(tk.exc_metrics),
                  inc_metrics=list(tk.inc_metrics),
                  default_metric=tk.default_metric)
    return out
