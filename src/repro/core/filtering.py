"""Filtering operations over Thicket components (§4.1.1, Fig. 6/9).

All filters are non-destructive: they return a **new** Thicket with the
selected profiles/nodes, leaving the original intact (the paper calls
this out explicitly to avoid unintended modification).
"""

from __future__ import annotations

from typing import Any, Callable, Sequence

import numpy as np

__all__ = ["filter_metadata", "filter_profile", "filter_stats"]


def filter_metadata(tk, predicate: Callable[[dict], bool]):
    """Keep profiles whose metadata row satisfies *predicate*.

    The predicate receives one metadata row as a dict, exactly like the
    paper's ``t_obj.filter_metadata(lambda x: x["compiler"] == ...)``.
    """
    keep = [
        pid for pid, row in tk.metadata.iterrows() if predicate(row)
    ]
    return filter_profile(tk, keep)


def filter_profile(tk, profiles: Sequence[Any]):
    """Keep only the given profile ids (helper shared by filters/groupby)."""
    from .thicket import Thicket

    wanted = set(profiles)
    missing = wanted - set(tk.profile)
    if missing:
        raise KeyError(f"unknown profiles: {sorted(map(str, missing))}")

    meta_mask = tk.metadata.index.isin(wanted)
    new_meta = tk.metadata[meta_mask]

    perf_mask = np.fromiter(
        (t[1] in wanted for t in tk.dataframe.index.values),
        dtype=bool, count=len(tk.dataframe),
    )
    new_perf = tk.dataframe[perf_mask]

    return Thicket(tk.graph, new_perf, new_meta,
                   profiles=[p for p in tk.profile if p in wanted],
                   exc_metrics=list(tk.exc_metrics),
                   inc_metrics=list(tk.inc_metrics),
                   default_metric=tk.default_metric)


def filter_stats(tk, predicate: Callable[[dict], bool]):
    """Keep call-tree nodes whose aggregated-statistics row satisfies
    *predicate* (Fig. 9 bottom).

    Returns a new Thicket whose statsframe and performance data are
    restricted to the matching nodes.  The graph keeps its structure;
    nodes without rows simply render without values.
    """
    from .thicket import Thicket

    keep_nodes = [
        node for node, row in tk.statsframe.iterrows() if predicate(row)
    ]
    keep_set = set(keep_nodes)

    stats_mask = tk.statsframe.index.isin(keep_set)
    new_stats = tk.statsframe[stats_mask]

    perf_mask = np.fromiter(
        (t[0] in keep_set for t in tk.dataframe.index.values),
        dtype=bool, count=len(tk.dataframe),
    )
    new_perf = tk.dataframe[perf_mask]

    out = Thicket(tk.graph, new_perf, tk.metadata.copy(),
                  statsframe=new_stats, profiles=list(tk.profile),
                  exc_metrics=list(tk.exc_metrics),
                  inc_metrics=list(tk.inc_metrics),
                  default_metric=tk.default_metric)
    return out
