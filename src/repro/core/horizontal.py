"""Hierarchical composition of Thickets (§3.2.2, Figs. 4 and 15).

``concat_thickets(axis="columns")`` composes Thickets captured with
different tools or on different architectures: their call trees are
unified, rows are matched on the ``(node, profile-index)`` hierarchical
key, and each input's metric columns appear under its header in a
two-level column index (e.g. ``("CPU", "time (exc)")``).

Because profile *hashes* differ across machines, callers pass
``metadata_key`` (e.g. ``"problem_size"``): each input thicket is
re-indexed by that metadata column so rows line up the way the paper's
Fig. 4 aligns CPU and GPU runs of the same problem size.

``axis="index"`` simply stacks additional profiles into one thicket.
"""

from __future__ import annotations

from typing import Any, Sequence

from ..frame import DataFrame, Index, MultiIndex, concat_columns, concat_rows
from ..graph import union_many

__all__ = ["concat_thickets"]


def concat_thickets(thickets: Sequence[Any], axis: str = "columns",
                    headers: Sequence[str] | None = None,
                    metadata_key: str | None = None,
                    match_on: str = "path"):
    """Compose multiple Thickets into one; see module docstring.

    ``match_on`` controls call-tree node identification across inputs:
    ``"path"`` (default) identifies nodes with equal root paths —
    correct when all inputs share one tree; ``"name"`` identifies nodes
    by frame name, which is how the paper's Fig. 4/15 align kernels
    whose trees differ at the root (``Base_Sequential`` vs
    ``Base_CUDA``).
    """
    from .thicket import Thicket

    thickets = list(thickets)
    if len(thickets) < 2:
        raise ValueError("need at least two thickets to concatenate")
    if axis == "index":
        return _concat_index(thickets)
    if axis != "columns":
        raise ValueError(f"axis must be 'columns' or 'index', got {axis!r}")
    if headers is None:
        headers = [f"thicket_{i}" for i in range(len(thickets))]
    if len(headers) != len(thickets):
        raise ValueError("headers must match number of thickets")

    if match_on == "path":
        union_graph, maps = union_many([tk.graph for tk in thickets])
    elif match_on == "name":
        union_graph, maps = _match_by_name(thickets)
    else:
        raise ValueError(f"match_on must be 'path' or 'name', got {match_on!r}")

    frames: list[DataFrame] = []
    metas: list[DataFrame] = []
    for tk, mapping in zip(thickets, maps):
        df = tk.dataframe.copy()
        index_tuples = []
        keep_rows = []
        for i, t in enumerate(df.index.values):
            node, pid = t[0], t[1]
            union_node = mapping.get(node)
            if union_node is None:
                continue  # name not shared across inputs
            if metadata_key is not None:
                pid = tk.metadata.loc[pid][metadata_key]
            index_tuples.append((union_node, pid))
            keep_rows.append(i)
        if len(keep_rows) != len(df):
            df = df.take(keep_rows)
        df.index = MultiIndex(index_tuples,
                              names=["node", metadata_key or "profile"])
        frames.append(df)

        meta = tk.metadata.copy()
        if metadata_key is not None:
            meta = meta.reset_index().set_index(metadata_key, drop=False)
        metas.append(meta)

    perf = concat_columns(frames, keys=list(headers), join="inner")
    perf = _sort_composed(perf, union_graph)

    metadata = concat_columns(metas, keys=list(headers), join="inner")

    exc = []
    inc = []
    default = None
    for header, tk in zip(headers, thickets):
        exc.extend((header, m) for m in tk.exc_metrics)
        inc.extend((header, m) for m in tk.inc_metrics)
        if default is None and tk.default_metric is not None:
            default = (header, tk.default_metric)

    profiles = list({t[1] for t in perf.index.values})
    out = Thicket(union_graph, perf, metadata, profiles=profiles,
                  exc_metrics=exc, inc_metrics=inc, default_metric=default)
    return out


def _match_by_name(thickets: list[Any]):
    """Identify nodes across thickets by frame name.

    The composed graph is the first thicket's tree squashed to the
    names present in *every* input (duplicate names within one tree
    resolve to the first occurrence in traversal order).
    """
    from ..graph.squash import squash_graph

    shared: set[str] | None = None
    for tk in thickets:
        names = {n.frame.name for n in tk.graph}
        shared = names if shared is None else (shared & names)
    shared = shared or set()

    base = thickets[0]
    keep = {n for n in base.graph if n.frame.name in shared}
    new_graph, base_map = squash_graph(base.graph, keep)
    name_to_new: dict[str, Any] = {}
    for node in keep:
        name_to_new.setdefault(node.frame.name, base_map[node])

    maps = []
    for tk in thickets:
        mapping = {}
        seen: set[str] = set()
        for node in tk.graph:
            name = node.frame.name
            if name in name_to_new and name not in seen:
                mapping[node] = name_to_new[name]
                seen.add(name)
        maps.append(mapping)
    return new_graph, maps


def _concat_index(thickets: list[Any]):
    """Stack profiles of multiple thickets into one (rows axis)."""
    from .thicket import Thicket

    union_graph, maps = union_many([tk.graph for tk in thickets])

    frames = []
    metas = []
    profiles: list[Any] = []
    for tk, mapping in zip(thickets, maps):
        df = tk.dataframe.copy()
        df.index = MultiIndex(
            [(mapping[t[0]], t[1]) for t in df.index.values],
            names=["node", "profile"],
        )
        frames.append(df)
        metas.append(tk.metadata)
        profiles.extend(tk.profile)
    if len(set(profiles)) != len(profiles):
        raise ValueError("duplicate profile ids across thickets")

    perf = concat_rows(frames)
    node_rank = {n: i for i, n in enumerate(union_graph.traverse())}
    prof_rank = {p: i for i, p in enumerate(profiles)}
    order = sorted(
        range(len(perf)),
        key=lambda i: (node_rank[perf.index.values[i][0]],
                       prof_rank[perf.index.values[i][1]]),
    )
    perf = perf.take(order)

    metadata = concat_rows(metas)
    metadata.index = Index(profiles, name="profile")

    exc: dict[str, None] = {}
    inc: dict[str, None] = {}
    for tk in thickets:
        for m in tk.exc_metrics:
            exc.setdefault(m, None)
        for m in tk.inc_metrics:
            inc.setdefault(m, None)
    return Thicket(union_graph, perf, metadata, profiles=profiles,
                   exc_metrics=list(exc), inc_metrics=list(inc),
                   default_metric=thickets[0].default_metric)


def _sort_composed(perf: DataFrame, graph) -> DataFrame:
    node_rank = {n: i for i, n in enumerate(graph.traverse())}
    keys = [
        (node_rank.get(t[0], len(node_rank)), _orderable(t[1]))
        for t in perf.index.values
    ]
    order = sorted(range(len(keys)), key=keys.__getitem__)
    return perf.take(order)


def _orderable(value: Any):
    try:
        return (0, float(value))
    except (TypeError, ValueError):
        return (1, str(value))
