"""Performance-regression detection between two thickets.

LLNL's ubiquitous-performance-analysis workflow (the paper's §6, which
Thicket plugs into) collects profiles from nightly test runs; the
actionable question is "which regions got slower since the baseline?".
This module answers it: per call-tree node, compare the metric's
distribution across the baseline ensemble against the candidate
ensemble with Welch's t-test and report significant relative changes.
"""

from __future__ import annotations

from typing import Any, Hashable

import numpy as np
from scipy import stats as sps

from ..frame import DataFrame, Index

__all__ = ["compare_thickets", "find_regressions"]


def _per_node_values(tk, metric: Hashable) -> dict[str, np.ndarray]:
    """Node name → float array of metric values across profiles."""
    out: dict[str, list[float]] = {}
    col = tk.dataframe.column(metric)
    for t, v in zip(tk.dataframe.index.values, col):
        if v is None or (isinstance(v, float) and np.isnan(v)):
            continue
        out.setdefault(t[0].frame.name, []).append(float(v))
    return {k: np.asarray(v) for k, v in out.items()}


def compare_thickets(baseline, candidate, metric: Hashable,
                     alpha: float = 0.05) -> DataFrame:
    """Node-by-node comparison of a metric across two ensembles.

    Returns a frame indexed by node name with baseline/candidate means,
    the relative change, Welch's t-test p-value, and a ``significant``
    flag (p < alpha with at least two samples on each side).  Matching
    is by node name, so the two thickets may come from different runs
    of the same code (the usual nightly set-up).
    """
    base = _per_node_values(baseline, metric)
    cand = _per_node_values(candidate, metric)
    names = [n for n in base if n in cand]
    if not names:
        raise ValueError("no shared call-tree nodes between the thickets")

    rows: dict[str, list[Any]] = {
        "baseline_mean": [], "candidate_mean": [], "relative_change": [],
        "p_value": [], "significant": [],
        "baseline_runs": [], "candidate_runs": [],
    }
    for name in names:
        b, c = base[name], cand[name]
        b_mean, c_mean = float(np.mean(b)), float(np.mean(c))
        if b_mean != 0:
            rel = (c_mean - b_mean) / b_mean
        elif c_mean == 0:
            rel = 0.0  # structural zero rows (e.g. grouping nodes)
        else:
            rel = float("inf")
        if len(b) >= 2 and len(c) >= 2 and (np.std(b) > 0 or np.std(c) > 0):
            p = float(sps.ttest_ind(b, c, equal_var=False).pvalue)
        else:
            p = float("nan")
        rows["baseline_mean"].append(b_mean)
        rows["candidate_mean"].append(c_mean)
        rows["relative_change"].append(rel)
        rows["p_value"].append(p)
        rows["significant"].append(bool(np.isfinite(p) and p < alpha))
        rows["baseline_runs"].append(len(b))
        rows["candidate_runs"].append(len(c))
    return DataFrame(rows, index=Index(names, name="node"))


def find_regressions(baseline, candidate, metric: Hashable,
                     threshold: float = 0.05, alpha: float = 0.05
                     ) -> DataFrame:
    """Nodes whose metric grew by more than *threshold* (significantly).

    Sorted worst-first by relative change.  A row qualifies when the
    candidate mean exceeds the baseline by the threshold fraction *and*
    the difference is statistically significant (or significance is
    undecidable because an ensemble has a single run — those rows are
    kept so single-run nightlies still alert, with ``p_value`` NaN).
    """
    table = compare_thickets(baseline, candidate, metric, alpha=alpha)
    rel = table.column("relative_change").astype(np.float64)
    pv = table.column("p_value").astype(np.float64)
    sig = table.column("significant")
    mask = (rel > threshold) & (np.asarray(
        [bool(s) for s in sig]) | np.isnan(pv))
    flagged = table[mask]
    return flagged.sort_values("relative_change", ascending=False)
