"""repro — a from-scratch reproduction of Thicket (HPDC '23).

Thicket is a Python toolkit for Exploratory Data Analysis of ensembles
of call-tree performance profiles.  This package re-implements Thicket
*and* every substrate it depends on (dataframes, the Hatchet call-tree
model, Caliper-style measurement, Extra-P-style modeling,
scikit-learn-style clustering, and synthetic RAJA Performance Suite /
MARBL workloads) using only numpy/scipy.

Quick start::

    from repro import Thicket
    from repro.workloads import rajaperf_campaign

    profiles = rajaperf_campaign(...)        # synthetic Caliper files
    tk = Thicket.from_caliperreader(profiles)
    tk.metadata                               # per-run build/context table
    tk.dataframe                              # (node, profile) metric table
"""

__version__ = "1.1.0"

from .core import (  # noqa: E402
    Thicket,
    ValidationReport,
    concat_thickets,
    load_thicket,
    profile_hash,
    save_thicket,
)
from .errors import (  # noqa: E402
    CompositionError,
    CorruptStoreError,
    PersistenceError,
    ProfileConflictError,
    ReaderError,
    ReproError,
    SchemaError,
)
from .errors import (  # noqa: E402
    ExecutionError,
    TaskTimeoutError,
    WorkerCrashError,
)
from .ingest import IngestReport, IngestResult, load_ensemble  # noqa: E402
from .query import QueryMatcher  # noqa: E402
from .resilience import ResiliencePolicy  # noqa: E402

__all__ = [
    "Thicket", "concat_thickets", "profile_hash", "QueryMatcher",
    "ReproError", "ReaderError", "SchemaError", "CompositionError",
    "ProfileConflictError", "PersistenceError", "CorruptStoreError",
    "ExecutionError", "TaskTimeoutError", "WorkerCrashError",
    "load_ensemble", "IngestReport", "IngestResult", "ResiliencePolicy",
    "save_thicket", "load_thicket", "ValidationReport",
    "__version__",
]
