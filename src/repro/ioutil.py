"""Durable-write primitives shared by every on-disk format.

A saved thicket is the unit of durable state in the paper's iterative
Jupyter workflows, so every writer in the toolkit (thicket store,
frame JSON, cali-JSON profiles, checkpoint journals) goes through the
same crash-safety discipline:

* :func:`atomic_write_text` — write to a temp file in the target
  directory, ``fsync`` it, then ``os.replace`` onto the destination.
  A crash at any point leaves either the old file or the new file,
  never a truncated hybrid.
* :func:`canonical_json` / :func:`sha256_of` — one canonical byte
  encoding per JSON payload, so content checksums are reproducible
  across save → load → save cycles.
* :func:`crc32_of` — cheap per-record checksum for append-only
  journal lines, where a full sha256 per record would be overkill.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import zlib
from pathlib import Path
from typing import Any

__all__ = ["atomic_write_text", "canonical_json", "sha256_of", "crc32_of",
           "fsync_path"]


def canonical_json(payload: Any) -> str:
    """The canonical encoding used for checksums: sorted keys, compact
    separators, no NaN literals (they are mapped to ``null`` upstream)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def sha256_of(text: str) -> str:
    """``sha256:<hex>`` digest of *text* (UTF-8)."""
    return "sha256:" + hashlib.sha256(text.encode("utf-8")).hexdigest()


def crc32_of(text: str) -> int:
    """Unsigned CRC-32 of *text* (UTF-8), for journal records."""
    return zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF


def fsync_path(path: Path) -> None:
    """Best-effort fsync of a file or directory (no-op where unsupported)."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform-dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform-dependent
        pass
    finally:
        os.close(fd)


def atomic_write_text(path: str | Path, text: str) -> Path:
    """Crash-safely replace *path* with *text*.

    The text is written to a ``NamedTemporaryFile`` in the destination
    directory, flushed and fsynced, and moved into place with
    ``os.replace`` (atomic on POSIX and Windows for same-filesystem
    paths).  The parent directory is fsynced afterwards so the rename
    itself is durable.  On any failure the temp file is removed and the
    previous contents of *path* are untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp")
    tmp = Path(tmp_name)
    try:
        with os.fdopen(fd, "w", encoding="utf-8") as fh:
            fh.write(text)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
    except BaseException:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise
    fsync_path(path.parent)
    return path
