"""Typed exception hierarchy for the whole toolkit.

Large campaigns (the paper's 1,903-profile RAJAPerf sweep, §5.1) make
corrupt inputs a statistical certainty, and a raw ``KeyError`` deep in
a reader is useless at that scale: it names neither the file nor the
ingestion stage that failed.  Every error raised by the readers, the
ingestion pipeline, and ensemble composition therefore derives from
:class:`ReproError` and carries

* ``source`` — the offending file path / profile id (``None`` when the
  input was an in-memory object with no useful address), and
* ``stage``  — the pipeline stage that failed (``read``, ``validate``,
  ``build``, or ``compose``).

Hierarchy::

    ReproError
    ├── ReaderError            I/O and JSON-decode failures
    │   └── SchemaError        payload present but structurally invalid
    ├── CompositionError       ensemble-level failures (also ValueError)
    │   └── ProfileConflictError   colliding / unusable profile ids
    ├── PersistenceError       durable-store write/read failures (also ValueError)
    │   └── CorruptStoreError  store exists but fails checksum / structure
    ├── QueryValidationError   a query is statically invalid for a thicket
    │                          (also ValueError)
    ├── ExecutionError         supervised parallel execution failures
    │   ├── TaskTimeoutError       a task exceeded its wall-clock deadline
    │   ├── WorkerCrashError       the worker process died / stopped beating
    │   ├── CircuitOpenError       fast-fail while a circuit breaker is open
    │   └── DeadlineExceededError  the whole run blew its wall budget
    ├── ServeError             analysis-service failures (repro serve)
    │   ├── OverloadedError        admission shed a request (HTTP 429)
    │   ├── NotReadyError          degraded/shedding/draining (HTTP 503)
    │   ├── RequestTimeoutError    a request blew its deadline (HTTP 503)
    │   └── NotFoundError          unknown dataset / route (HTTP 404)
    └── ClientError            resilient-client failures (repro.client)
        ├── TransportError             connection refused / reset / torn
        ├── ServerRejectedError        the server answered with an error
        ├── RetryBudgetExhaustedError  the retry token bucket ran dry
        ├── ClientDeadlineError        the call/session deadline expired
        └── ClientCircuitOpenError     per-host breaker fast-fail
                                       (also a CircuitOpenError)

``CompositionError`` doubles as a ``ValueError`` so that pre-existing
callers catching ``ValueError`` around :meth:`Thicket.from_caliperreader`
keep working; ``PersistenceError`` does the same for callers catching
``ValueError`` around :meth:`Thicket.from_json` / :func:`load_thicket`.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "ReproError",
    "ReaderError",
    "SchemaError",
    "CompositionError",
    "ProfileConflictError",
    "PersistenceError",
    "CorruptStoreError",
    "QueryValidationError",
    "ExecutionError",
    "TaskTimeoutError",
    "WorkerCrashError",
    "CircuitOpenError",
    "DeadlineExceededError",
    "ServeError",
    "OverloadedError",
    "NotReadyError",
    "RequestTimeoutError",
    "NotFoundError",
    "ClientError",
    "TransportError",
    "ServerRejectedError",
    "RetryBudgetExhaustedError",
    "ClientDeadlineError",
    "ClientCircuitOpenError",
]


class ReproError(Exception):
    """Base class for every error this toolkit raises on bad input.

    Parameters
    ----------
    message:
        Human-readable description of the failure.
    source:
        Path / profile id of the offending input, when known.
    stage:
        Ingestion stage that failed (``read``/``validate``/``build``/
        ``compose``).
    """

    default_stage: str = "ingest"

    def __init__(self, message: str, *, source: Any = None,
                 stage: str | None = None):
        self.source = str(source) if source is not None else None
        self.stage = stage or self.default_stage
        if self.source and self.source not in message:
            message = f"{message} [source: {self.source}]"
        super().__init__(message)


class ReaderError(ReproError):
    """A profile could not be read: I/O failure or undecodable JSON."""

    default_stage = "read"


class SchemaError(ReaderError):
    """A payload decoded fine but violates the cali-JSON schema."""

    default_stage = "validate"


class CompositionError(ReproError, ValueError):
    """An ensemble could not be composed from the given profiles."""

    default_stage = "compose"


class ProfileConflictError(CompositionError):
    """Profile ids collide or cannot be derived (bad ``metadata_key``)."""

    default_stage = "compose"


class PersistenceError(ReproError, ValueError):
    """A durable store (thicket file, frame JSON, checkpoint journal)
    could not be written or read.

    ``source`` carries the store path and ``stage`` the persistence
    stage that failed (``save``/``load``/``journal``).
    """

    default_stage = "persist"


class QueryValidationError(ReproError, ValueError):
    """A call-path query is statically invalid for a given thicket.

    Raised by :func:`repro.query.validate_query` (and therefore by
    :meth:`Thicket.query` with ``validate=True``, the default) *before*
    any path matching runs: unknown metric / metadata column names
    (with did-you-mean suggestions), predicate type mismatches (a
    string operation applied to a float metric), comparisons on
    identifiers never bound in ``MATCH``, and quantifier sequences no
    path in the call tree could ever satisfy.

    ``problems`` lists every violation found (the message joins them);
    ``suggestions`` maps each unknown column name to its nearest valid
    candidates.
    """

    default_stage = "validate"

    def __init__(self, message: str, *,
                 problems: "list[str] | None" = None,
                 suggestions: "dict[str, list[str]] | None" = None,
                 source: Any = None):
        self.problems = list(problems or [message])
        self.suggestions = dict(suggestions or {})
        super().__init__(message, source=source, stage="validate")


class ExecutionError(ReproError):
    """A task failed inside the supervised execution engine.

    Base class for the failures :class:`repro.resilience.SupervisedExecutor`
    attributes to individual tasks: wall-clock timeouts, worker-process
    crashes, circuit-breaker fast-fails, and run-level deadline
    exhaustion.  ``source`` carries the task key (for ingestion, the
    profile path) so a quarantined task is addressable.
    """

    default_stage = "execute"


class TaskTimeoutError(ExecutionError):
    """A task exceeded its per-task wall-clock deadline.

    The supervisor — not the worker — enforces the timeout: the worker
    process is killed and the task is quarantined (or retried, when the
    policy allows), so a single hung read can never stall the run.
    """

    default_stage = "execute"


class WorkerCrashError(ExecutionError):
    """The worker process executing a task died or stopped heartbeating.

    Covers both a hard crash (the child exited without reporting a
    result) and a hang detected by heartbeat staleness; either way the
    task is attributed and the worker replaced.
    """

    default_stage = "execute"


class CircuitOpenError(ExecutionError):
    """A task was failed fast because its circuit breaker is open.

    After ``breaker_threshold`` consecutive failures for the same
    failure domain (for ingestion, the profile's parent directory) the
    breaker opens and further tasks are quarantined immediately instead
    of burning retries against a dead source.
    """

    default_stage = "execute"


class DeadlineExceededError(ExecutionError):
    """The supervised run exhausted its overall wall-clock budget.

    Remaining tasks (queued or in flight) are quarantined with this
    error so the run terminates promptly with full attribution instead
    of overrunning its deadline.
    """

    default_stage = "execute"


class ServeError(ReproError):
    """A request to the analysis service (``repro serve``) failed.

    Every subclass carries the HTTP ``status`` the service maps it to
    and a stable machine-readable ``code`` that clients can branch on
    (``"overloaded"``, ``"not_ready"``, ``"deadline_exceeded"``, …) —
    the serving layer never surfaces a bare 500 without a code.
    """

    default_stage = "serve"
    status: int = 500
    code: str = "internal"


class OverloadedError(ServeError):
    """Admission control shed this request (HTTP 429).

    Raised when the token-bucket rate limiter is empty, the bounded
    work queue / concurrency semaphore is full, or the caller's
    per-client circuit breaker is open.  ``retry_after`` is the
    server's estimate (seconds) of when capacity returns; it becomes
    the ``Retry-After`` response header.  ``reason`` names the shed
    path (``rate_limited``/``queue_full``/``concurrency``/
    ``circuit_open``).
    """

    default_stage = "admit"
    status = 429
    code = "overloaded"

    def __init__(self, message: str, *, retry_after: float = 1.0,
                 reason: str = "overloaded", source: Any = None):
        self.retry_after = float(retry_after)
        self.reason = str(reason)
        self.code = self.reason
        super().__init__(message, source=source, stage="admit")


class NotReadyError(ServeError):
    """The service cannot take this work right now (HTTP 503).

    Raised while draining for shutdown, or when the memory-pressure
    state machine has degraded past the point where this endpoint is
    allowed (ingest under ``degraded``, everything heavy under
    ``shedding``).  ``reason`` carries the state that refused the
    request.
    """

    default_stage = "serve"
    status = 503
    code = "not_ready"

    def __init__(self, message: str, *, retry_after: float = 5.0,
                 reason: str = "not_ready", source: Any = None):
        self.retry_after = float(retry_after)
        self.reason = str(reason)
        self.code = self.reason
        super().__init__(message, source=source, stage="serve")


class RequestTimeoutError(ServeError):
    """A request exceeded its per-request deadline (HTTP 503).

    The supervising waiter — not the worker — enforces the deadline:
    the request is failed fast and attributed, the abandoned worker is
    replaced by the watchdog, and the client may retry after
    ``retry_after`` seconds.
    """

    default_stage = "execute"
    status = 503
    code = "deadline_exceeded"

    def __init__(self, message: str, *, retry_after: float = 1.0,
                 source: Any = None):
        self.retry_after = float(retry_after)
        super().__init__(message, source=source, stage="execute")


class NotFoundError(ServeError):
    """The request names a dataset or route the service does not have
    (HTTP 404)."""

    default_stage = "serve"
    status = 404
    code = "not_found"


class ClientError(ReproError):
    """A request made through :class:`repro.client.ReproClient` failed.

    The client-side mirror of :class:`ServeError`: every way a remote
    call can fail — the wire dropped, the server said no, the retry
    budget ran dry, the deadline expired — surfaces as one of these
    subclasses, so callers never see a bare ``OSError`` or
    ``http.client`` exception.  ``source`` carries the request target
    (``METHOD host:port/path``) and ``request_id`` the server-assigned
    correlation id when one was received, so a client-side failure is
    joinable with the server's logs and traces.
    """

    default_stage = "client"

    def __init__(self, message: str, *, source: Any = None,
                 stage: str | None = None,
                 request_id: "str | None" = None):
        self.request_id = request_id
        super().__init__(message, source=source, stage=stage)


class TransportError(ClientError):
    """The connection itself failed: refused, reset, or torn mid-body.

    Wraps the underlying ``OSError`` / ``http.client`` failure (kept as
    ``__cause__``).  Transport failures on idempotent or
    idempotency-keyed requests are retried against the budget; on
    unkeyed unsafe requests they are surfaced immediately.
    """

    default_stage = "transport"


class ServerRejectedError(ClientError):
    """The server answered with an error envelope (HTTP >= 400).

    Carries the HTTP ``status``, the machine-readable envelope
    ``code``, the server's ``retry_after`` hint when one was sent, and
    the echoed ``request_id``.  Retryable statuses (429/500/502/503/
    504) are consumed by the retry loop; what ultimately reaches the
    caller is either a non-retryable rejection (400/404) or the final
    rejection after the budget/deadline ran out.
    """

    default_stage = "client"

    def __init__(self, message: str, *, status: int, code: str = "internal",
                 retry_after: "float | None" = None, source: Any = None,
                 request_id: "str | None" = None):
        self.status = int(status)
        self.code = str(code)
        self.retry_after = retry_after
        super().__init__(message, source=source, request_id=request_id)


class RetryBudgetExhaustedError(ClientError):
    """The client's token-bucket retry budget ran dry (no retry storms).

    Raised instead of launching one more retry: when every caller in a
    fleet retries at once, the retries themselves become the overload.
    The bucket refills at ``ClientPolicy.retry_budget_rate`` tokens per
    second up to ``retry_budget_capacity``, so a short blip retries
    freely while a sustained outage degrades into fast typed failures.
    ``__cause__`` carries the error that wanted the retry.
    """

    default_stage = "retry"


class ClientDeadlineError(ClientError):
    """The per-call or whole-session deadline expired client-side.

    Raised before wasting a network round-trip the budget can no longer
    pay for: either the deadline expired between retries, or the
    remaining budget is smaller than ``ClientPolicy.min_attempt_budget``.
    ``__cause__`` carries the last attempt's failure when one happened.
    """

    default_stage = "deadline"


class ClientCircuitOpenError(ClientError, CircuitOpenError):
    """The per-host circuit breaker is open: fail fast, no connection.

    A host that keeps failing trips its breaker
    (:class:`repro.resilience.CircuitBreaker` keyed by ``host:port``),
    and further calls fail immediately for the cooldown instead of
    burning the retry budget against a dead server.  Doubly typed: both
    a :class:`ClientError` (the client contract) and a
    :class:`CircuitOpenError` (the resilience contract).
    """

    default_stage = "client"


class CorruptStoreError(PersistenceError):
    """A store file exists but fails verification.

    Raised when a saved thicket (or checkpoint payload) is undecodable,
    fails its embedded content checksum, names an unknown format, or is
    structurally inconsistent under ``load_thicket(..., verify=True)``.
    Never a bare ``json.JSONDecodeError``/``KeyError``: the message
    says what was wrong and ``source`` names the offending file.
    """

    default_stage = "verify"
