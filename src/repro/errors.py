"""Typed exception hierarchy for the whole toolkit.

Large campaigns (the paper's 1,903-profile RAJAPerf sweep, §5.1) make
corrupt inputs a statistical certainty, and a raw ``KeyError`` deep in
a reader is useless at that scale: it names neither the file nor the
ingestion stage that failed.  Every error raised by the readers, the
ingestion pipeline, and ensemble composition therefore derives from
:class:`ReproError` and carries

* ``source`` — the offending file path / profile id (``None`` when the
  input was an in-memory object with no useful address), and
* ``stage``  — the pipeline stage that failed (``read``, ``validate``,
  ``build``, or ``compose``).

Hierarchy::

    ReproError
    ├── ReaderError            I/O and JSON-decode failures
    │   └── SchemaError        payload present but structurally invalid
    ├── CompositionError       ensemble-level failures (also ValueError)
    │   └── ProfileConflictError   colliding / unusable profile ids
    ├── PersistenceError       durable-store write/read failures (also ValueError)
    │   └── CorruptStoreError  store exists but fails checksum / structure
    ├── QueryValidationError   a query is statically invalid for a thicket
    │                          (also ValueError)
    ├── ExecutionError         supervised parallel execution failures
    │   ├── TaskTimeoutError       a task exceeded its wall-clock deadline
    │   ├── WorkerCrashError       the worker process died / stopped beating
    │   ├── CircuitOpenError       fast-fail while a circuit breaker is open
    │   └── DeadlineExceededError  the whole run blew its wall budget
    └── ServeError             analysis-service failures (repro serve)
        ├── OverloadedError        admission shed a request (HTTP 429)
        ├── NotReadyError          degraded/shedding/draining (HTTP 503)
        ├── RequestTimeoutError    a request blew its deadline (HTTP 503)
        └── NotFoundError          unknown dataset / route (HTTP 404)

``CompositionError`` doubles as a ``ValueError`` so that pre-existing
callers catching ``ValueError`` around :meth:`Thicket.from_caliperreader`
keep working; ``PersistenceError`` does the same for callers catching
``ValueError`` around :meth:`Thicket.from_json` / :func:`load_thicket`.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "ReproError",
    "ReaderError",
    "SchemaError",
    "CompositionError",
    "ProfileConflictError",
    "PersistenceError",
    "CorruptStoreError",
    "QueryValidationError",
    "ExecutionError",
    "TaskTimeoutError",
    "WorkerCrashError",
    "CircuitOpenError",
    "DeadlineExceededError",
    "ServeError",
    "OverloadedError",
    "NotReadyError",
    "RequestTimeoutError",
    "NotFoundError",
]


class ReproError(Exception):
    """Base class for every error this toolkit raises on bad input.

    Parameters
    ----------
    message:
        Human-readable description of the failure.
    source:
        Path / profile id of the offending input, when known.
    stage:
        Ingestion stage that failed (``read``/``validate``/``build``/
        ``compose``).
    """

    default_stage: str = "ingest"

    def __init__(self, message: str, *, source: Any = None,
                 stage: str | None = None):
        self.source = str(source) if source is not None else None
        self.stage = stage or self.default_stage
        if self.source and self.source not in message:
            message = f"{message} [source: {self.source}]"
        super().__init__(message)


class ReaderError(ReproError):
    """A profile could not be read: I/O failure or undecodable JSON."""

    default_stage = "read"


class SchemaError(ReaderError):
    """A payload decoded fine but violates the cali-JSON schema."""

    default_stage = "validate"


class CompositionError(ReproError, ValueError):
    """An ensemble could not be composed from the given profiles."""

    default_stage = "compose"


class ProfileConflictError(CompositionError):
    """Profile ids collide or cannot be derived (bad ``metadata_key``)."""

    default_stage = "compose"


class PersistenceError(ReproError, ValueError):
    """A durable store (thicket file, frame JSON, checkpoint journal)
    could not be written or read.

    ``source`` carries the store path and ``stage`` the persistence
    stage that failed (``save``/``load``/``journal``).
    """

    default_stage = "persist"


class QueryValidationError(ReproError, ValueError):
    """A call-path query is statically invalid for a given thicket.

    Raised by :func:`repro.query.validate_query` (and therefore by
    :meth:`Thicket.query` with ``validate=True``, the default) *before*
    any path matching runs: unknown metric / metadata column names
    (with did-you-mean suggestions), predicate type mismatches (a
    string operation applied to a float metric), comparisons on
    identifiers never bound in ``MATCH``, and quantifier sequences no
    path in the call tree could ever satisfy.

    ``problems`` lists every violation found (the message joins them);
    ``suggestions`` maps each unknown column name to its nearest valid
    candidates.
    """

    default_stage = "validate"

    def __init__(self, message: str, *,
                 problems: "list[str] | None" = None,
                 suggestions: "dict[str, list[str]] | None" = None,
                 source: Any = None):
        self.problems = list(problems or [message])
        self.suggestions = dict(suggestions or {})
        super().__init__(message, source=source, stage="validate")


class ExecutionError(ReproError):
    """A task failed inside the supervised execution engine.

    Base class for the failures :class:`repro.resilience.SupervisedExecutor`
    attributes to individual tasks: wall-clock timeouts, worker-process
    crashes, circuit-breaker fast-fails, and run-level deadline
    exhaustion.  ``source`` carries the task key (for ingestion, the
    profile path) so a quarantined task is addressable.
    """

    default_stage = "execute"


class TaskTimeoutError(ExecutionError):
    """A task exceeded its per-task wall-clock deadline.

    The supervisor — not the worker — enforces the timeout: the worker
    process is killed and the task is quarantined (or retried, when the
    policy allows), so a single hung read can never stall the run.
    """

    default_stage = "execute"


class WorkerCrashError(ExecutionError):
    """The worker process executing a task died or stopped heartbeating.

    Covers both a hard crash (the child exited without reporting a
    result) and a hang detected by heartbeat staleness; either way the
    task is attributed and the worker replaced.
    """

    default_stage = "execute"


class CircuitOpenError(ExecutionError):
    """A task was failed fast because its circuit breaker is open.

    After ``breaker_threshold`` consecutive failures for the same
    failure domain (for ingestion, the profile's parent directory) the
    breaker opens and further tasks are quarantined immediately instead
    of burning retries against a dead source.
    """

    default_stage = "execute"


class DeadlineExceededError(ExecutionError):
    """The supervised run exhausted its overall wall-clock budget.

    Remaining tasks (queued or in flight) are quarantined with this
    error so the run terminates promptly with full attribution instead
    of overrunning its deadline.
    """

    default_stage = "execute"


class ServeError(ReproError):
    """A request to the analysis service (``repro serve``) failed.

    Every subclass carries the HTTP ``status`` the service maps it to
    and a stable machine-readable ``code`` that clients can branch on
    (``"overloaded"``, ``"not_ready"``, ``"deadline_exceeded"``, …) —
    the serving layer never surfaces a bare 500 without a code.
    """

    default_stage = "serve"
    status: int = 500
    code: str = "internal"


class OverloadedError(ServeError):
    """Admission control shed this request (HTTP 429).

    Raised when the token-bucket rate limiter is empty, the bounded
    work queue / concurrency semaphore is full, or the caller's
    per-client circuit breaker is open.  ``retry_after`` is the
    server's estimate (seconds) of when capacity returns; it becomes
    the ``Retry-After`` response header.  ``reason`` names the shed
    path (``rate_limited``/``queue_full``/``concurrency``/
    ``circuit_open``).
    """

    default_stage = "admit"
    status = 429
    code = "overloaded"

    def __init__(self, message: str, *, retry_after: float = 1.0,
                 reason: str = "overloaded", source: Any = None):
        self.retry_after = float(retry_after)
        self.reason = str(reason)
        self.code = self.reason
        super().__init__(message, source=source, stage="admit")


class NotReadyError(ServeError):
    """The service cannot take this work right now (HTTP 503).

    Raised while draining for shutdown, or when the memory-pressure
    state machine has degraded past the point where this endpoint is
    allowed (ingest under ``degraded``, everything heavy under
    ``shedding``).  ``reason`` carries the state that refused the
    request.
    """

    default_stage = "serve"
    status = 503
    code = "not_ready"

    def __init__(self, message: str, *, retry_after: float = 5.0,
                 reason: str = "not_ready", source: Any = None):
        self.retry_after = float(retry_after)
        self.reason = str(reason)
        self.code = self.reason
        super().__init__(message, source=source, stage="serve")


class RequestTimeoutError(ServeError):
    """A request exceeded its per-request deadline (HTTP 503).

    The supervising waiter — not the worker — enforces the deadline:
    the request is failed fast and attributed, the abandoned worker is
    replaced by the watchdog, and the client may retry after
    ``retry_after`` seconds.
    """

    default_stage = "execute"
    status = 503
    code = "deadline_exceeded"

    def __init__(self, message: str, *, retry_after: float = 1.0,
                 source: Any = None):
        self.retry_after = float(retry_after)
        super().__init__(message, source=source, stage="execute")


class NotFoundError(ServeError):
    """The request names a dataset or route the service does not have
    (HTTP 404)."""

    default_stage = "serve"
    status = 404
    code = "not_found"


class CorruptStoreError(PersistenceError):
    """A store file exists but fails verification.

    Raised when a saved thicket (or checkpoint payload) is undecodable,
    fails its embedded content checksum, names an unknown format, or is
    structurally inconsistent under ``load_thicket(..., verify=True)``.
    Never a bare ``json.JSONDecodeError``/``KeyError``: the message
    says what was wrong and ``source`` names the offending file.
    """

    default_stage = "verify"
