"""Typed exception hierarchy for the whole toolkit.

Large campaigns (the paper's 1,903-profile RAJAPerf sweep, §5.1) make
corrupt inputs a statistical certainty, and a raw ``KeyError`` deep in
a reader is useless at that scale: it names neither the file nor the
ingestion stage that failed.  Every error raised by the readers, the
ingestion pipeline, and ensemble composition therefore derives from
:class:`ReproError` and carries

* ``source`` — the offending file path / profile id (``None`` when the
  input was an in-memory object with no useful address), and
* ``stage``  — the pipeline stage that failed (``read``, ``validate``,
  ``build``, or ``compose``).

Hierarchy::

    ReproError
    ├── ReaderError            I/O and JSON-decode failures
    │   └── SchemaError        payload present but structurally invalid
    └── CompositionError       ensemble-level failures (also ValueError)
        └── ProfileConflictError   colliding / unusable profile ids

``CompositionError`` doubles as a ``ValueError`` so that pre-existing
callers catching ``ValueError`` around :meth:`Thicket.from_caliperreader`
keep working.
"""

from __future__ import annotations

from typing import Any

__all__ = [
    "ReproError",
    "ReaderError",
    "SchemaError",
    "CompositionError",
    "ProfileConflictError",
]


class ReproError(Exception):
    """Base class for every error this toolkit raises on bad input.

    Parameters
    ----------
    message:
        Human-readable description of the failure.
    source:
        Path / profile id of the offending input, when known.
    stage:
        Ingestion stage that failed (``read``/``validate``/``build``/
        ``compose``).
    """

    default_stage: str = "ingest"

    def __init__(self, message: str, *, source: Any = None,
                 stage: str | None = None):
        self.source = str(source) if source is not None else None
        self.stage = stage or self.default_stage
        if self.source and self.source not in message:
            message = f"{message} [source: {self.source}]"
        super().__init__(message)


class ReaderError(ReproError):
    """A profile could not be read: I/O failure or undecodable JSON."""

    default_stage = "read"


class SchemaError(ReaderError):
    """A payload decoded fine but violates the cali-JSON schema."""

    default_stage = "validate"


class CompositionError(ReproError, ValueError):
    """An ensemble could not be composed from the given profiles."""

    default_stage = "compose"


class ProfileConflictError(CompositionError):
    """Profile ids collide or cannot be derived (bad ``metadata_key``)."""

    default_stage = "compose"
