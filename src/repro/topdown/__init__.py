"""``repro.topdown`` — Intel top-down analysis (Yasin 2014) substitute."""

from .counters import (
    KernelCharacter,
    slot_distribution,
    slot_distribution_level2,
)
from .metrics import (
    TOPDOWN_LEVEL2_METRICS,
    TOPDOWN_METRICS,
    derive_topdown,
    derive_topdown_level2,
    validate_topdown,
)

__all__ = [
    "KernelCharacter",
    "slot_distribution",
    "slot_distribution_level2",
    "TOPDOWN_METRICS",
    "TOPDOWN_LEVEL2_METRICS",
    "derive_topdown",
    "derive_topdown_level2",
    "validate_topdown",
]
