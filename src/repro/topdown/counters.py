"""Synthetic pipeline-slot counter model.

Real top-down analysis needs Intel PMU counters; on a laptop without
them we model how a kernel's *character* maps to slot distribution.
The model captures the regimes the paper's case study exhibits
(§5.1.1, Fig. 14):

* streaming kernels are **backend bound** and become more so as the
  working set outgrows cache ("data saturation");
* compute-dense kernels (VOL3D) retire a larger fraction;
* unoptimized builds (-O0) retire many more (useless) instructions,
  shifting fractions toward retiring;
* frontend bound and bad speculation stay below ~10% for these simple
  loop kernels (the paper omits them for this reason).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["KernelCharacter", "slot_distribution"]


@dataclass(frozen=True)
class KernelCharacter:
    """Characterization of a kernel for the slot model.

    Attributes
    ----------
    arithmetic_intensity:
        Flops per byte of traffic; higher → more retiring.
    branchiness:
        Fraction of branchy control flow; feeds bad speculation.
    footprint_bytes:
        Per-iteration working set; drives cache-pressure growth.
    """

    arithmetic_intensity: float
    branchiness: float = 0.02
    footprint_bytes: float = 8.0


def slot_distribution(character: KernelCharacter, problem_size: int,
                      cache_bytes: float = 45e6,
                      optimization_level: int = 3) -> dict[str, float]:
    """Top-down slot fractions for a kernel run.

    Returns the four fractions (summing to 1).  The backend-bound
    share grows smoothly with the ratio of working set to cache via a
    saturating ``1 - exp(-x)`` curve; -O0 inflates retiring because the
    un-optimized instruction stream retires many redundant µops.
    """
    working_set = character.footprint_bytes * max(problem_size, 1)
    pressure = 1.0 - math.exp(-working_set / cache_bytes)

    # base retiring from arithmetic intensity (roofline-flavoured):
    # intensity >> 1 keeps the pipeline fed, intensity << 1 starves it.
    # The 1.5 exponent steepens the transition so streaming kernels
    # (AI ~0.2) retire only a few percent while compute-dense kernels
    # (AI > 2) retire ~35-40%, matching the paper's Fig. 15 split.
    ai = max(character.arithmetic_intensity, 1e-3)
    retiring_base = 1.0 / (1.0 + (1.0 / ai) ** 1.5)

    # -O0 retires extra bookkeeping µops: inflate retiring share.
    o0_boost = {0: 0.35, 1: 0.02, 2: 0.0, 3: 0.0}.get(optimization_level, 0.0)

    retiring = min(0.9, retiring_base * (1.0 - 0.55 * pressure) + o0_boost)
    bad_spec = min(0.08, character.branchiness)
    frontend = 0.03 + 0.02 * character.branchiness
    backend = max(0.0, 1.0 - retiring - bad_spec - frontend)

    total = retiring + frontend + backend + bad_spec
    return {
        "slots_retiring": retiring / total,
        "slots_frontend_bound": frontend / total,
        "slots_backend_bound": backend / total,
        "slots_bad_speculation": bad_spec / total,
    }


def slot_distribution_level2(character: KernelCharacter, problem_size: int,
                             cache_bytes: float = 45e6,
                             optimization_level: int = 3) -> dict[str, float]:
    """Level-2 slot counters consistent with :func:`slot_distribution`.

    The level-1 split is subdivided with the standard regimes:

    * backend bound → **memory** vs **core**: memory's share follows the
      cache-pressure curve (big working sets stall on DRAM, small ones
      on execution-port contention);
    * bad speculation → mispredicts dominate clears for branchy loops;
    * retiring → almost all "base" µops for these simple kernels;
    * frontend → latency vs bandwidth split mildly with branchiness.
    """
    level1 = slot_distribution(character, problem_size,
                               cache_bytes=cache_bytes,
                               optimization_level=optimization_level)
    working_set = character.footprint_bytes * max(problem_size, 1)
    pressure = 1.0 - math.exp(-working_set / cache_bytes)

    memory_share = 0.35 + 0.6 * pressure        # of backend-bound slots
    branch_share = 0.85                          # of bad-speculation slots
    base_share = 0.97                            # of retiring slots
    latency_share = 0.6 + 1.5 * character.branchiness  # of frontend slots

    backend = level1["slots_backend_bound"]
    badspec = level1["slots_bad_speculation"]
    retiring = level1["slots_retiring"]
    frontend = level1["slots_frontend_bound"]
    out = dict(level1)
    out.update({
        "slots_backend_memory": backend * memory_share,
        "slots_backend_core": backend * (1.0 - memory_share),
        "slots_badspec_branch": badspec * branch_share,
        "slots_badspec_clears": badspec * (1.0 - branch_share),
        "slots_retiring_base": retiring * base_share,
        "slots_retiring_ms": retiring * (1.0 - base_share),
        "slots_frontend_latency": frontend * min(latency_share, 0.95),
        "slots_frontend_bandwidth": frontend * (1.0 - min(latency_share,
                                                          0.95)),
    })
    return out
