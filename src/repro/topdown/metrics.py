"""Yasin top-down metric derivation (§5.1.1).

Top-down analysis (Yasin 2014) attributes CPU pipeline *slots* to four
top-level categories; the fractions sum to 1:

* **retiring** — slots that retired useful µops;
* **frontend bound** — slots starved of µops by the frontend;
* **backend bound** — slots stalled on data/compute resources;
* **bad speculation** — slots wasted on mispredicted paths.

Real hardware exposes the inputs through counters
(``UOPS_RETIRED.RETIRE_SLOTS``, ``IDQ_UOPS_NOT_DELIVERED.CORE``, ...);
our synthetic counter service accumulates the slot counts directly and
this module normalizes them into the four fractions Caliper's topdown
module reports.
"""

from __future__ import annotations

from typing import Mapping

__all__ = ["TOPDOWN_METRICS", "TOPDOWN_LEVEL2_METRICS", "derive_topdown",
           "derive_topdown_level2", "validate_topdown"]

TOPDOWN_METRICS = (
    "Retiring",
    "Frontend bound",
    "Backend bound",
    "Bad speculation",
)

# Yasin's level-2 subdivision of each top-level category.
TOPDOWN_LEVEL2_METRICS = {
    "Retiring": ("Base", "Microcode sequencer"),
    "Frontend bound": ("Fetch latency", "Fetch bandwidth"),
    "Backend bound": ("Memory bound", "Core bound"),
    "Bad speculation": ("Branch mispredicts", "Machine clears"),
}

_SLOT_TO_METRIC = {
    "slots_retiring": "Retiring",
    "slots_frontend_bound": "Frontend bound",
    "slots_backend_bound": "Backend bound",
    "slots_bad_speculation": "Bad speculation",
}

# level-2 counters → (parent category, sub-metric)
_SLOT_TO_LEVEL2 = {
    "slots_retiring_base": ("Retiring", "Base"),
    "slots_retiring_ms": ("Retiring", "Microcode sequencer"),
    "slots_frontend_latency": ("Frontend bound", "Fetch latency"),
    "slots_frontend_bandwidth": ("Frontend bound", "Fetch bandwidth"),
    "slots_backend_memory": ("Backend bound", "Memory bound"),
    "slots_backend_core": ("Backend bound", "Core bound"),
    "slots_badspec_branch": ("Bad speculation", "Branch mispredicts"),
    "slots_badspec_clears": ("Bad speculation", "Machine clears"),
}


def derive_topdown(counters: Mapping[str, float]) -> dict[str, float]:
    """Normalize raw slot counters into top-level top-down fractions."""
    slots = {m: float(counters.get(s, 0.0)) for s, m in _SLOT_TO_METRIC.items()}
    total = sum(slots.values())
    if total <= 0.0:
        return {m: 0.0 for m in TOPDOWN_METRICS}
    return {m: v / total for m, v in slots.items()}


def derive_topdown_level2(counters: Mapping[str, float]) -> dict[str, float]:
    """Level-2 fractions of total slots (Yasin's hierarchical model).

    Sub-category counters (e.g. ``slots_backend_memory`` /
    ``slots_backend_core``) partition their parent's slots; the derived
    fractions are of *total* slots, so each pair sums to its parent's
    top-level fraction.  Parents without sub-counters split evenly —
    the documented fallback when level-2 events are not collected.
    """
    level1 = derive_topdown(counters)
    out: dict[str, float] = {}
    for parent, subs in TOPDOWN_LEVEL2_METRICS.items():
        sub_slots = {}
        for slot, (par, sub) in _SLOT_TO_LEVEL2.items():
            if par == parent:
                sub_slots[sub] = float(counters.get(slot, 0.0))
        total = sum(sub_slots.values())
        parent_frac = level1[parent]
        for sub in subs:
            if total > 0:
                out[sub] = parent_frac * sub_slots.get(sub, 0.0) / total
            else:
                out[sub] = parent_frac / len(subs)
    return out


def validate_topdown(metrics: Mapping[str, float], tol: float = 1e-9) -> bool:
    """Check the top-down invariant: fractions in [0,1] summing to 1 (or all 0)."""
    values = [float(metrics.get(m, 0.0)) for m in TOPDOWN_METRICS]
    if all(v == 0.0 for v in values):
        return True
    if any(v < -tol or v > 1.0 + tol for v in values):
        return False
    return abs(sum(values) - 1.0) <= 1e-6
