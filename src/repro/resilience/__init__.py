"""``repro.resilience`` — supervised parallel execution.

The reusable substrate under every campaign-scale bulk stage: a
process-pool :class:`SupervisedExecutor` with per-task deadlines,
worker heartbeats, bounded jittered retries, and deterministic result
ordering; a per-failure-domain :class:`CircuitBreaker`; the
:class:`ResiliencePolicy` knob object threaded through the stack; and
the :class:`SignalGuard` that keeps checkpoint journals and worker
pools safe across Ctrl-C.  Raw ``time.sleep`` retry loops and bare
``multiprocessing``/``concurrent.futures`` pools elsewhere in the tree
are lint findings (RPR007): bulk work routes through here.
"""

from .breaker import CLOSED, HALF_OPEN, OPEN, BreakerState, CircuitBreaker
from .executor import SupervisedExecutor, TaskOutcome, in_worker
from .policy import SERIAL_POLICY, ResiliencePolicy
from .signals import SignalGuard

__all__ = [
    "ResiliencePolicy", "SERIAL_POLICY",
    "SupervisedExecutor", "TaskOutcome", "in_worker",
    "CircuitBreaker", "BreakerState", "CLOSED", "OPEN", "HALF_OPEN",
    "SignalGuard",
]
