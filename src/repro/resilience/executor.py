"""``SupervisedExecutor`` — a worker pool that survives its workers.

Campaign-scale bulk stages (hundreds of profile reads off flaky
parallel filesystems) meet three failure modes a plain pool cannot
handle: a task that *hangs* (``concurrent.futures`` has no way to kill
one stuck worker), a worker that *crashes* (taking queued results with
it), and a source that fails *repeatedly* (burning the retry budget on
every one of its tasks).  This module supervises a pool of worker
processes from the parent:

* **per-task deadlines** — the supervisor, not the worker, watches the
  wall clock; an overrunning worker is killed and its task quarantined
  as :class:`~repro.errors.TaskTimeoutError`;
* **heartbeats** — each worker refreshes a shared liveness stamp from
  a background thread; a worker that stops beating (or whose process
  dies) is declared crashed, killed, and replaced;
* **bounded retries with jittered exponential backoff** — transient
  failures (a task raising a ``ReproError`` with ``transient=True``)
  are re-dispatched after ``policy.delay_for(attempt, rng)`` seconds,
  generalizing the ingest pipeline's historical ``_read_with_retry``;
* **circuit breakers** — consecutive failures per failure domain trip
  a :class:`~repro.resilience.breaker.CircuitBreaker`, converting
  retry storms into fast :class:`~repro.errors.CircuitOpenError`
  quarantines;
* **run deadlines** — an overall wall budget after which remaining
  tasks fail fast with :class:`~repro.errors.DeadlineExceededError`;
* **deterministic ordering** — results come back sorted by task index,
  so parallel output is byte-identical to a serial run.

Tasks must be picklable module-level callables returning picklable
values; worker processes are started with the ``fork`` method where
available so test seams (monkeypatched module globals) propagate.
"""

from __future__ import annotations

import multiprocessing
import random
import threading
import time
from dataclasses import dataclass, field
from multiprocessing import connection as mp_connection
from typing import Any, Callable, Sequence

from ..errors import (
    CircuitOpenError,
    DeadlineExceededError,
    ExecutionError,
    ReproError,
    TaskTimeoutError,
    WorkerCrashError,
)
from ..obs import counter as obs_counter
from ..obs import span as obs_span
from .breaker import CircuitBreaker
from .policy import ResiliencePolicy

__all__ = ["SupervisedExecutor", "TaskOutcome", "in_worker"]

# Supervisor poll tick: bounds how late a timeout/heartbeat check can
# fire; small enough that sub-second task_timeouts are honoured.
_TICK = 0.02

# Set in worker processes; lets task functions (e.g. fault injectors)
# distinguish "really crash the process" from "simulate in-process".
_WORKER_STATE: dict[str, Any] = {"in_worker": False, "stop_heartbeat": None}


def in_worker() -> bool:
    """True when called inside a SupervisedExecutor worker process."""
    return bool(_WORKER_STATE["in_worker"])


@dataclass
class TaskOutcome:
    """The supervised result of one task, successful or not."""

    index: int                 # position in the input sequence
    key: str                   # caller-supplied label (e.g. profile path)
    status: str                # ok|error|timeout|crash|breaker_open|deadline
    value: Any = None          # task return value when status == "ok"
    error: ReproError | None = None   # typed error otherwise
    attempts: int = 1          # dispatch count including retries
    seconds: float = 0.0       # wall time spent across all attempts

    @property
    def ok(self) -> bool:
        """True when the task produced a value."""
        return self.status == "ok"


# ----------------------------------------------------------------------
# error transport across the process boundary
# ----------------------------------------------------------------------

def _encode_error(exc: BaseException) -> dict:
    """Picklable description of a task failure (used by the worker)."""
    if isinstance(exc, ReproError):
        return {"type": type(exc).__name__, "message": str(exc),
                "source": exc.source, "stage": exc.stage,
                "transient": bool(getattr(exc, "transient", False))}
    return {"type": "ExecutionError",
            "message": f"{type(exc).__name__}: {exc}",
            "source": None, "stage": "execute", "transient": False}


def _decode_error(info: dict) -> ReproError:
    """Rebuild the typed error a worker reported, preserving its class."""
    import repro.errors as errors_mod

    cls = getattr(errors_mod, info.get("type", ""), None)
    if not (isinstance(cls, type) and issubclass(cls, ReproError)):
        cls = ExecutionError
    err = cls(info.get("message", "task failed"),
              source=info.get("source"), stage=info.get("stage"))
    if info.get("transient"):
        err.transient = True
    return err


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------

def _worker_main(conn, fn: Callable[[Any], Any], heartbeat,
                 interval: float) -> None:
    """Worker-process loop: recv task → run → send outcome, forever.

    A daemon thread refreshes *heartbeat* (a shared double holding
    ``time.monotonic()``) every *interval* seconds so the supervisor
    can tell a busy worker from a wedged one.
    """
    stop = threading.Event()
    _WORKER_STATE["in_worker"] = True
    _WORKER_STATE["stop_heartbeat"] = stop

    def _beat():
        while not stop.wait(interval):
            heartbeat.value = time.monotonic()

    heartbeat.value = time.monotonic()
    threading.Thread(target=_beat, daemon=True,
                     name="repro-heartbeat").start()
    try:
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break
            if msg is None:
                break
            index, _attempt, item = msg
            try:
                value = fn(item)
                reply = (index, "ok", value, None)
            except BaseException as exc:  # pragma: allow - process boundary:
                # nothing may escape a worker unreported; everything is
                # encoded and re-typed on the supervisor side
                reply = (index, "error", None, _encode_error(exc))
            try:
                conn.send(reply)
            except (BrokenPipeError, OSError):  # supervisor went away
                break
    finally:
        stop.set()
        conn.close()


class _Worker:
    """Supervisor-side handle for one worker process."""

    __slots__ = ("proc", "conn", "heartbeat", "busy", "dispatched_at")

    def __init__(self, proc, conn, heartbeat):
        self.proc = proc
        self.conn = conn
        self.heartbeat = heartbeat
        self.busy: tuple[int, int] | None = None   # (index, attempt)
        self.dispatched_at = 0.0


def _mp_context():
    """``fork`` start method where available (monkeypatched test seams
    propagate to children); ``spawn`` elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


# ----------------------------------------------------------------------
# the supervisor
# ----------------------------------------------------------------------

class SupervisedExecutor:
    """Run tasks under a :class:`~repro.resilience.ResiliencePolicy`.

    Parameters
    ----------
    policy:
        The resilience knobs (pool width, deadlines, retry budget,
        breaker thresholds).
    breaker_key:
        Maps a task key to its failure domain for the circuit breaker
        (e.g. profile path → parent directory).  Defaults to the key
        itself.
    clock / rng / sleep:
        Injectable monotonic clock, jitter RNG, and backoff sleep for
        deterministic tests.  The RNG defaults to ``random.Random(0)``
        so jittered backoff schedules are reproducible run to run.
    """

    def __init__(self, policy: ResiliencePolicy | None = None, *,
                 breaker_key: Callable[[str], str] | None = None,
                 clock: Callable[[], float] = time.monotonic,
                 rng=None, sleep: Callable[[float], None] | None = None):
        self.policy = policy or ResiliencePolicy()
        self.clock = clock
        self.rng = rng if rng is not None else random.Random(0)
        self.sleep = sleep if sleep is not None else time.sleep
        self.breaker_key = breaker_key or (lambda key: key)
        self.breaker = CircuitBreaker(
            threshold=self.policy.breaker_threshold,
            cooldown=self.policy.breaker_cooldown,
            clock=clock, on_trip=self._on_trip)

    def _on_trip(self, key: str) -> None:
        obs_counter("exec.breaker_trips")

    # -- public API -----------------------------------------------------
    def map(self, fn: Callable[[Any], Any], items: Sequence[Any],
            keys: Sequence[str] | None = None) -> list[TaskOutcome]:
        """Run ``fn`` over *items*; returns outcomes in input order.

        *keys* label the tasks for attribution (defaults to the item
        index); the label also feeds ``breaker_key`` to pick each
        task's circuit-breaker domain.  Never raises for a task
        failure — every item yields a :class:`TaskOutcome`, failed ones
        carrying a typed :class:`~repro.errors.ReproError`.
        """
        items = list(items)
        keys = ([str(k) for k in keys] if keys is not None
                else [str(i) for i in range(len(items))])
        if len(keys) != len(items):
            raise ValueError(
                f"{len(keys)} keys for {len(items)} items")
        if not items:
            return []
        mode = "pool" if self.policy.supervised else "inline"
        with obs_span("exec.map", tasks=len(items), jobs=self.policy.jobs,
                      mode=mode) as s:
            obs_counter("exec.tasks", len(items))
            if mode == "inline":
                outcomes = self._map_inline(fn, items, keys)
            else:
                outcomes = self._map_pool(fn, items, keys)
            s.set("ok", sum(1 for o in outcomes if o.ok))
            s.set("failed", sum(1 for o in outcomes if not o.ok))
        outcomes.sort(key=lambda o: o.index)
        return outcomes

    # -- inline mode ----------------------------------------------------
    def _map_inline(self, fn, items, keys) -> list[TaskOutcome]:
        """Serial execution with retry/breaker/deadline but no pool.

        Per-task timeouts are unenforceable without process isolation,
        so policies that set one route to the pool instead (see
        :meth:`ResiliencePolicy.supervised`); the run ``deadline`` is
        still checked between tasks.
        """
        t0 = self.clock()
        outcomes = []
        for index, (item, key) in enumerate(zip(items, keys)):
            if self.policy.deadline is not None and \
                    self.clock() - t0 >= self.policy.deadline:
                outcomes.append(self._deadline_outcome(index, key))
                continue
            bkey = self.breaker_key(key)
            if not self.breaker.allow(bkey):
                outcomes.append(self._breaker_outcome(index, key, bkey))
                continue
            start = self.clock()
            attempt = 0
            while True:
                try:
                    value = fn(item)
                except ReproError as e:
                    if getattr(e, "transient", False) \
                            and attempt < self.policy.max_retries:
                        obs_counter("exec.retries")
                        self.sleep(self.policy.delay_for(attempt, self.rng))
                        attempt += 1
                        continue
                    self.breaker.record_failure(bkey)
                    obs_counter("exec.errors")
                    outcomes.append(TaskOutcome(
                        index, key, "error", error=e, attempts=attempt + 1,
                        seconds=self.clock() - start))
                    break
                self.breaker.record_success(bkey)
                obs_counter("exec.ok")
                outcomes.append(TaskOutcome(
                    index, key, "ok", value=value, attempts=attempt + 1,
                    seconds=self.clock() - start))
                break
        return outcomes

    # -- pool mode ------------------------------------------------------
    def _spawn_worker(self, ctx, fn) -> _Worker:
        heartbeat = ctx.Value("d", self.clock())
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, fn, heartbeat,
                  self.policy.heartbeat_interval),
            daemon=True, name="repro-worker")
        proc.start()
        child_conn.close()
        return _Worker(proc, parent_conn, heartbeat)

    def _kill_worker(self, worker: _Worker) -> None:
        """Terminate a worker process and release its pipe."""
        try:
            if worker.proc.is_alive():
                worker.proc.terminate()
                worker.proc.join(0.5)
                if worker.proc.is_alive():  # SIGTERM ignored: escalate
                    worker.proc.kill()
                    worker.proc.join(0.5)
        finally:
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover - close is best-effort
                pass

    def _map_pool(self, fn, items, keys) -> list[TaskOutcome]:
        policy = self.policy
        ctx = _mp_context()
        n = len(items)
        jobs = min(policy.jobs, n) or 1
        # (not_before, index, attempt): retries re-enter with a backoff
        # not_before; dispatch always picks the lowest eligible index
        pending: list[tuple[float, int, int]] = [
            (0.0, i, 0) for i in range(n)]
        started: dict[int, float] = {}    # index -> first-dispatch stamp
        done: dict[int, TaskOutcome] = {}
        workers: list[_Worker] = []
        t0 = self.clock()
        try:
            while len(done) < n:
                now = self.clock()
                if policy.deadline is not None and now - t0 >= \
                        policy.deadline:
                    self._fail_remaining(pending, workers, done, keys,
                                         started, now)
                    break
                self._dispatch(ctx, fn, items, pending, workers, done,
                               keys, started, jobs, now)
                self._collect(pending, workers, done, keys, started, now)
                self._sweep(pending, workers, done, keys, started,
                            self.clock())
        finally:
            self._shutdown(workers)
        return list(done.values())

    def _dispatch(self, ctx, fn, items, pending, workers, done, keys,
                  started, jobs, now) -> None:
        """Assign eligible pending tasks to idle (spawning) workers."""
        while True:
            eligible = [t for t in pending if t[0] <= now]
            if not eligible:
                return
            not_before, index, attempt = min(eligible,
                                             key=lambda t: (t[1], t[2]))
            key = keys[index]
            bkey = self.breaker_key(key)
            if not self.breaker.allow(bkey):
                pending.remove((not_before, index, attempt))
                done[index] = self._breaker_outcome(index, key, bkey)
                continue
            idle = next((w for w in workers if w.busy is None), None)
            if idle is None:
                if len(workers) >= jobs:
                    return
                idle = self._spawn_worker(ctx, fn)
                workers.append(idle)
            try:
                idle.conn.send((index, attempt, items[index]))
            except (BrokenPipeError, OSError):
                # worker died before accepting work; replace and retry
                self._kill_worker(idle)
                workers.remove(idle)
                obs_counter("exec.workers_respawned")
                continue
            idle.busy = (index, attempt)
            idle.dispatched_at = now
            started.setdefault(index, now)
            pending.remove((not_before, index, attempt))

    def _collect(self, pending, workers, done, keys, started, now) -> None:
        """Wait briefly for results and fold them into ``done``."""
        busy = [w for w in workers if w.busy is not None]
        if not busy:
            if any(t[0] > now for t in pending):
                self.sleep(_TICK)  # all pending tasks backing off
            return
        conns = {w.conn: w for w in busy}
        try:
            ready = mp_connection.wait(list(conns), timeout=_TICK)
        except OSError:  # a pipe died mid-wait; the sweep will catch it
            ready = []
        for conn in ready:
            worker = conns[conn]
            try:
                index, status, value, errinfo = conn.recv()
            except (EOFError, OSError):
                self._handle_worker_death(worker, workers, pending, done,
                                          keys, started, "crash")
                continue
            index_w, attempt = worker.busy
            worker.busy = None
            if index != index_w:  # pragma: no cover - protocol guard
                continue
            key = keys[index]
            bkey = self.breaker_key(key)
            seconds = self.clock() - started.get(index,
                                                 worker.dispatched_at)
            if status == "ok":
                self.breaker.record_success(bkey)
                obs_counter("exec.ok")
                done[index] = TaskOutcome(index, key, "ok", value=value,
                                          attempts=attempt + 1,
                                          seconds=seconds)
                continue
            error = _decode_error(errinfo)
            if getattr(error, "transient", False) and \
                    attempt < self.policy.max_retries:
                obs_counter("exec.retries")
                delay = self.policy.delay_for(attempt, self.rng)
                pending.append((self.clock() + delay, index, attempt + 1))
                continue
            self.breaker.record_failure(bkey)
            obs_counter("exec.errors")
            done[index] = TaskOutcome(index, key, "error", error=error,
                                      attempts=attempt + 1,
                                      seconds=seconds)

    def _sweep(self, pending, workers, done, keys, started, now) -> None:
        """Liveness pass: kill overdue and dead/stopped-beating workers."""
        for worker in list(workers):
            if worker.busy is None:
                if not worker.proc.is_alive():
                    workers.remove(worker)
                    self._kill_worker(worker)
                continue
            if not worker.proc.is_alive():
                self._handle_worker_death(worker, workers, pending, done,
                                          keys, started, "crash")
                continue
            overdue = (self.policy.task_timeout is not None
                       and now - worker.dispatched_at
                       >= self.policy.task_timeout)
            stale = (now - worker.heartbeat.value
                     >= self.policy.heartbeat_grace)
            if overdue:
                self._handle_worker_death(worker, workers, pending, done,
                                          keys, started, "timeout")
            elif stale:
                obs_counter("exec.heartbeat_kills")
                self._handle_worker_death(worker, workers, pending, done,
                                          keys, started, "crash")

    def _handle_worker_death(self, worker, workers, pending, done, keys,
                             started, status) -> None:
        """Kill *worker*, attribute its in-flight task, maybe retry it."""
        index, attempt = worker.busy
        worker.busy = None
        self._kill_worker(worker)
        workers.remove(worker)
        obs_counter("exec.workers_respawned")
        key = keys[index]
        bkey = self.breaker_key(key)
        now = self.clock()
        seconds = now - started.get(index, worker.dispatched_at)
        if status == "timeout":
            obs_counter("exec.timeouts")
            error: ReproError = TaskTimeoutError(
                f"task for {key} exceeded its "
                f"{self.policy.task_timeout}s deadline "
                f"(attempt {attempt + 1}); worker killed", source=key)
        else:
            obs_counter("exec.worker_crashes")
            error = WorkerCrashError(
                f"worker executing task for {key} died or stopped "
                f"heartbeating (attempt {attempt + 1})", source=key)
        if self.policy.retry_timeouts and \
                attempt < self.policy.max_retries:
            obs_counter("exec.retries")
            delay = self.policy.delay_for(attempt, self.rng)
            pending.append((now + delay, index, attempt + 1))
            return
        self.breaker.record_failure(bkey)
        done[index] = TaskOutcome(index, key, status, error=error,
                                  attempts=attempt + 1, seconds=seconds)

    def _fail_remaining(self, pending, workers, done, keys, started,
                        now) -> None:
        """Run deadline blown: quarantine everything still outstanding."""
        for _not_before, index, attempt in pending:
            done[index] = self._deadline_outcome(index, keys[index],
                                                 attempts=attempt + 1)
        pending.clear()
        for worker in list(workers):
            if worker.busy is None:
                continue
            index, attempt = worker.busy
            worker.busy = None
            self._kill_worker(worker)
            workers.remove(worker)
            done[index] = self._deadline_outcome(
                index, keys[index], attempts=attempt + 1,
                seconds=now - started.get(index, worker.dispatched_at))

    def _shutdown(self, workers) -> None:
        """Reap every worker: polite sentinel first, then terminate."""
        for worker in workers:
            try:
                worker.conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker in workers:
            worker.proc.join(0.2)
            self._kill_worker(worker)
        workers.clear()

    # -- outcome helpers ------------------------------------------------
    def _breaker_outcome(self, index, key, bkey) -> TaskOutcome:
        obs_counter("exec.breaker_fast_fails")
        return TaskOutcome(
            index, key, "breaker_open",
            error=CircuitOpenError(
                f"circuit breaker open for {bkey}; task for {key} "
                f"failed fast without dispatch", source=key))

    def _deadline_outcome(self, index, key, attempts: int = 1,
                          seconds: float = 0.0) -> TaskOutcome:
        obs_counter("exec.deadline_failures")
        return TaskOutcome(
            index, key, "deadline",
            error=DeadlineExceededError(
                f"run deadline of {self.policy.deadline}s exhausted "
                f"before task for {key} completed", source=key),
            attempts=attempts, seconds=seconds)
