"""Graceful shutdown: defer SIGINT/SIGTERM across journal criticals.

A Ctrl-C that lands while the checkpoint journal is mid-append can
tear the in-flight record (the journal tolerates a torn *tail*, but
the profile's payload work is lost and must be redone), and one that
lands while worker processes are mid-reap can leak children.  The
:class:`SignalGuard` installed by a checkpointed ingest run keeps both
windows safe:

* outside a critical section, the signal behaves exactly as before —
  ``KeyboardInterrupt`` for ``SIGINT``, ``SystemExit(128+sig)`` for
  ``SIGTERM`` — so interactive interruption stays instant;
* inside a :meth:`~SignalGuard.critical` block (a journal append, a
  worker-pool teardown), delivery is *deferred*: the flag is recorded,
  the critical section completes, and the interruption is raised the
  moment the block exits.

Re-running after such an interruption therefore resumes exactly: every
record that was being written when the signal arrived is durably on
disk, never torn.

Signal handlers can only be installed from the main thread; elsewhere
the guard degrades to a no-op (the default handlers stay in place), so
library code may use it unconditionally.
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager

__all__ = ["SignalGuard"]

_GUARDED_SIGNALS = (signal.SIGINT, signal.SIGTERM)


class SignalGuard:
    """Context manager deferring SIGINT/SIGTERM across critical windows.

    Usage::

        with SignalGuard() as guard:
            for item in work:
                result = process(item)          # interruptible
                with guard.critical():
                    journal.append(result)      # never torn

    Nesting ``critical()`` blocks is allowed; the pending signal is
    delivered when the outermost block exits.
    """

    def __init__(self, signals=_GUARDED_SIGNALS):
        self.signals = tuple(signals)
        self._previous: dict[int, object] = {}
        self._depth = 0
        self._pending: int | None = None
        self._installed = False

    # -- handler lifecycle ---------------------------------------------
    def __enter__(self) -> "SignalGuard":
        if threading.current_thread() is threading.main_thread():
            for sig in self.signals:
                self._previous[sig] = signal.signal(sig, self._on_signal)
            self._installed = True
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._installed:
            for sig, previous in self._previous.items():
                signal.signal(sig, previous)
            self._previous.clear()
            self._installed = False
        # a signal that arrived inside a critical block whose exit
        # raised something else must still not be lost silently
        if self._pending is not None and exc_type is None:
            self._deliver()

    # -- the protocol ---------------------------------------------------
    @property
    def interrupted(self) -> bool:
        """True when a guarded signal arrived and is awaiting delivery."""
        return self._pending is not None

    def _on_signal(self, signum, frame) -> None:
        if self._depth > 0:
            self._pending = signum
            return
        self._raise_for(signum)

    def _raise_for(self, signum: int) -> None:
        if signum == signal.SIGINT:
            raise KeyboardInterrupt
        raise SystemExit(128 + signum)

    def _deliver(self) -> None:
        signum, self._pending = self._pending, None
        self._raise_for(signum)

    @contextmanager
    def critical(self):
        """Defer guarded signals until this block exits.

        The block body always runs to completion; a signal that
        arrived inside is re-raised (as ``KeyboardInterrupt`` /
        ``SystemExit``) immediately after the outermost block exits.
        """
        self._depth += 1
        try:
            yield self
        finally:
            self._depth -= 1
            if self._depth == 0 and self._pending is not None:
                self._deliver()
