"""Graceful shutdown: defer SIGINT/SIGTERM across journal criticals.

A Ctrl-C that lands while the checkpoint journal is mid-append can
tear the in-flight record (the journal tolerates a torn *tail*, but
the profile's payload work is lost and must be redone), and one that
lands while worker processes are mid-reap can leak children.  The
:class:`SignalGuard` installed by a checkpointed ingest run keeps both
windows safe:

* outside a critical section, the signal behaves exactly as before —
  ``KeyboardInterrupt`` for ``SIGINT``, ``SystemExit(128+sig)`` for
  ``SIGTERM`` — so interactive interruption stays instant;
* inside a :meth:`~SignalGuard.critical` block (a journal append, a
  worker-pool teardown), delivery is *deferred*: the flag is recorded,
  the critical section completes, and the interruption is raised the
  moment the block exits.

Re-running after such an interruption therefore resumes exactly: every
record that was being written when the signal arrived is durably on
disk, never torn.

Signal handlers can only be installed from the main thread; elsewhere
the guard degrades to a no-op (the default handlers stay in place), so
library code may use it unconditionally.

Guards **nest**: library code deep in the stack may enter its own
``SignalGuard`` while an outer one (the CLI's, the server's) is
active.  Critical depth and the pending signal are shared across all
installed guards, so a signal that lands inside *any* critical section
— the outer guard's, the inner guard's, or both nested — is deferred
until the **outermost** critical block exits, and an inner guard
uninstalling itself hands the still-pending signal back to the outer
guard instead of losing it.
"""

from __future__ import annotations

import signal
import threading
from contextlib import contextmanager

__all__ = ["SignalGuard"]

_GUARDED_SIGNALS = (signal.SIGINT, signal.SIGTERM)


class SignalGuard:
    """Context manager deferring SIGINT/SIGTERM across critical windows.

    Usage::

        with SignalGuard() as guard:
            for item in work:
                result = process(item)          # interruptible
                with guard.critical():
                    journal.append(result)      # never torn

    Nesting ``critical()`` blocks is allowed; the pending signal is
    delivered when the outermost block exits.  Nesting whole guards
    (a guard entered while another is installed) is also allowed:
    critical depth and the pending signal are shared class-level state
    on the main thread, so an inner guard never un-defers a signal the
    outer guard's critical section is still protecting against.
    """

    # shared across nested installed guards (mutated from the main
    # thread only: signal handlers and installation both live there)
    _active: "list[SignalGuard]" = []
    _shared_depth = 0
    _shared_pending: int | None = None

    def __init__(self, signals=_GUARDED_SIGNALS):
        self.signals = tuple(signals)
        self._previous: dict[int, object] = {}
        self._depth = 0          # fallback depth for uninstalled guards
        self._installed = False

    # -- handler lifecycle ---------------------------------------------
    def __enter__(self) -> "SignalGuard":
        if threading.current_thread() is threading.main_thread():
            for sig in self.signals:
                self._previous[sig] = signal.signal(sig, self._on_signal)
            self._installed = True
            SignalGuard._active.append(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if self._installed:
            for sig, previous in self._previous.items():
                signal.signal(sig, previous)
            self._previous.clear()
            self._installed = False
            if self in SignalGuard._active:
                SignalGuard._active.remove(self)
            if SignalGuard._active:
                # an outer guard is still installed: leave the shared
                # pending signal for its critical sections to deliver
                return
            # a signal that arrived inside a critical block whose exit
            # raised something else must still not be lost silently
            pending, SignalGuard._shared_pending = \
                SignalGuard._shared_pending, None
            SignalGuard._shared_depth = 0
            if pending is not None and exc_type is None:
                self._raise_for(pending)

    # -- the protocol ---------------------------------------------------
    @property
    def interrupted(self) -> bool:
        """True when a guarded signal arrived and is awaiting delivery."""
        return SignalGuard._shared_pending is not None

    def _on_signal(self, signum, frame) -> None:
        if SignalGuard._shared_depth > 0:
            SignalGuard._shared_pending = signum
            return
        self._raise_for(signum)

    def _raise_for(self, signum: int) -> None:
        if signum == signal.SIGINT:
            raise KeyboardInterrupt
        raise SystemExit(128 + signum)

    def _deliver(self) -> None:
        signum, SignalGuard._shared_pending = \
            SignalGuard._shared_pending, None
        self._raise_for(signum)

    @contextmanager
    def critical(self):
        """Defer guarded signals until this block exits.

        The block body always runs to completion; a signal that
        arrived inside is re-raised (as ``KeyboardInterrupt`` /
        ``SystemExit``) immediately after the outermost block exits —
        counting the critical sections of *every* active guard, not
        just this one's.
        """
        if not self._installed:
            # uninstalled guard (non-main thread): depth bookkeeping
            # stays instance-local and delivery never happens here
            self._depth += 1
            try:
                yield self
            finally:
                self._depth -= 1
            return
        SignalGuard._shared_depth += 1
        try:
            yield self
        finally:
            SignalGuard._shared_depth -= 1
            if SignalGuard._shared_depth == 0 \
                    and SignalGuard._shared_pending is not None:
                self._deliver()
