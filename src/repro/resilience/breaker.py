"""Circuit breaker: convert retry storms into fast, attributed failures.

When a whole source directory goes away (an unmounted filesystem, a
dead NFS export), every profile under it fails the same way; without a
breaker the supervisor would burn its full retry-and-timeout budget on
each of hundreds of doomed tasks.  The :class:`CircuitBreaker` tracks
failures per *key* (the caller chooses the failure domain — for
ingestion, the profile's parent directory) and walks the classic state
machine:

``closed``
    Normal operation.  ``breaker_threshold`` consecutive failures for
    a key trip that key's breaker to ``open``.
``open``
    Every :meth:`allow` for the key answers ``False`` — callers fail
    the task fast with :class:`~repro.errors.CircuitOpenError` instead
    of dispatching it — until ``cooldown`` seconds have passed.
``half_open``
    After the cooldown one probe task is let through.  Success closes
    the breaker (and resets the failure count); failure re-opens it
    for another full cooldown.

The clock is injectable so every transition is unit-testable without
sleeping.

All state transitions happen under one internal lock, so the breaker
may be shared by concurrent callers (the analysis server keys it by
client id and hits it from every handler thread): in particular,
exactly **one** concurrent :meth:`~CircuitBreaker.allow` caller wins
the half-open probe — the check-and-set of ``probe_in_flight`` is
atomic, never a lost update between racing threads.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

__all__ = ["CircuitBreaker", "BreakerState",
           "CLOSED", "OPEN", "HALF_OPEN"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class BreakerState:
    """Mutable per-key breaker bookkeeping (one failure domain)."""

    __slots__ = ("state", "consecutive_failures", "opened_at",
                 "probe_in_flight", "trips")

    def __init__(self):
        self.state = CLOSED
        self.consecutive_failures = 0
        self.opened_at = 0.0
        self.probe_in_flight = False
        self.trips = 0


class CircuitBreaker:
    """Per-key closed → open → half-open circuit breaker.

    Parameters
    ----------
    threshold:
        Consecutive failures that trip a key's breaker.  ``0``
        disables the breaker entirely (``allow`` is always ``True``).
    cooldown:
        Seconds an open breaker waits before admitting a half-open
        probe.
    clock:
        Injectable monotonic clock (testing); defaults to
        :func:`time.monotonic`.
    on_trip:
        Optional callback ``on_trip(key)`` fired on each closed→open
        (or half-open→open) transition, used by the executor to bump
        the ``exec.breaker_trips`` counter.
    """

    def __init__(self, threshold: int = 5, cooldown: float = 30.0,
                 clock: Callable[[], float] = time.monotonic,
                 on_trip: Callable[[str], None] | None = None):
        if threshold < 0:
            raise ValueError(f"threshold must be >= 0, got {threshold}")
        if cooldown < 0:
            raise ValueError(f"cooldown must be >= 0, got {cooldown}")
        self.threshold = threshold
        self.cooldown = cooldown
        self.clock = clock
        self.on_trip = on_trip
        self._lock = threading.Lock()
        self._keys: dict[str, BreakerState] = {}

    # -- state inspection ----------------------------------------------
    def state(self, key: str) -> str:
        """Current state name for *key* (``closed`` when never seen).

        Reflects cooldown expiry: an ``open`` breaker whose cooldown
        has elapsed reports ``half_open``.
        """
        with self._lock:
            ks = self._keys.get(key)
            if ks is None:
                return CLOSED
            if ks.state == OPEN and \
                    self.clock() - ks.opened_at >= self.cooldown:
                return HALF_OPEN
            return ks.state

    @property
    def trips(self) -> int:
        """Total number of trips (closed/half-open → open) so far."""
        with self._lock:
            return sum(ks.trips for ks in self._keys.values())

    def tripped_keys(self) -> list[str]:
        """Keys whose breaker has tripped at least once, sorted."""
        with self._lock:
            return sorted(k for k, ks in self._keys.items() if ks.trips)

    def retry_after(self, key: str) -> float:
        """Seconds until an open *key* would admit its half-open probe
        (0.0 when the key is closed or already probe-eligible)."""
        with self._lock:
            ks = self._keys.get(key)
            if ks is None or ks.state != OPEN:
                return 0.0
            return max(0.0, self.cooldown - (self.clock() - ks.opened_at))

    # -- the protocol ---------------------------------------------------
    def allow(self, key: str) -> bool:
        """May a task for *key* be dispatched right now?

        ``False`` while the breaker is open and cooling down.  The
        first call after the cooldown admits exactly one half-open
        probe; further calls answer ``False`` until that probe's
        outcome is recorded.
        """
        if self.threshold == 0:
            return True
        with self._lock:
            ks = self._keys.get(key)
            if ks is None or ks.state == CLOSED:
                return True
            now = self.clock()
            if ks.state == OPEN:
                if now - ks.opened_at < self.cooldown:
                    return False
                ks.state = HALF_OPEN
                ks.probe_in_flight = False
            if ks.state == HALF_OPEN:
                if ks.probe_in_flight:
                    return False
                ks.probe_in_flight = True
                return True
            return True  # pragma: no cover - states are exhaustive

    def record_success(self, key: str) -> None:
        """Record a successful task for *key*; closes a half-open breaker."""
        if self.threshold == 0:
            return
        with self._lock:
            ks = self._keys.get(key)
            if ks is None:
                return
            ks.consecutive_failures = 0
            ks.probe_in_flight = False
            ks.state = CLOSED

    def record_failure(self, key: str) -> bool:
        """Record a failed task for *key*; returns True when this
        failure tripped the breaker (closed/half-open → open)."""
        if self.threshold == 0:
            return False
        with self._lock:
            ks = self._keys.setdefault(key, BreakerState())
            ks.consecutive_failures += 1
            was_half_open = ks.state == HALF_OPEN or (
                ks.state == OPEN
                and self.clock() - ks.opened_at >= self.cooldown)
            if ks.state == CLOSED and \
                    ks.consecutive_failures < self.threshold:
                return False
            if ks.state == OPEN and not was_half_open:
                return False  # already open, still cooling down
            ks.state = OPEN
            ks.opened_at = self.clock()
            ks.probe_in_flight = False
            ks.trips += 1
        # fire the callback outside the lock: it may take other locks
        # (the metrics registry) and must not be able to deadlock us
        if self.on_trip is not None:
            self.on_trip(key)
        return True
