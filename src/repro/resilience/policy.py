"""``ResiliencePolicy`` — the single knob object threaded through the stack.

Every supervised bulk stage (ensemble ingestion today; stats over
groups, batch query, campaign scans tomorrow) takes one
:class:`ResiliencePolicy` instead of a drifting pile of keyword
arguments.  The policy says how wide to fan out (``jobs``), how long a
single task may run (``task_timeout``), how failures are retried
(``max_retries``/``backoff``/``backoff_jitter``), when a failing
source trips its circuit breaker (``breaker_threshold``/
``breaker_cooldown``), and how much wall clock the whole run may spend
(``deadline``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

__all__ = ["ResiliencePolicy", "SERIAL_POLICY"]


@dataclass(frozen=True)
class ResiliencePolicy:
    """Execution-resilience knobs for one supervised bulk stage.

    Parameters
    ----------
    jobs:
        Worker processes to fan tasks out across.  ``1`` (the default)
        runs tasks inline on the calling process — byte-identical to
        the historical serial behaviour — unless ``task_timeout`` or
        ``deadline`` require supervision.
    task_timeout:
        Per-task wall-clock budget in seconds, enforced by the
        supervisor (the worker is killed when it overruns).  ``None``
        disables per-task deadlines.
    max_retries:
        Bounded retry budget for *transient* task failures (I/O
        hiccups flagged ``transient`` by the task).  Timeouts and
        crashes are quarantined, not retried, unless
        ``retry_timeouts`` is set: a deterministic hang would burn the
        whole deadline re-hanging.
    backoff:
        Base delay in seconds for jittered exponential backoff between
        retries (delay = ``backoff * 2**attempt * (1 + jitter*U[0,1))``).
    backoff_jitter:
        Jitter fraction in ``[0, 1]``; ``0`` reproduces the historical
        deterministic backoff exactly.  The RNG is injectable, so
        jittered schedules are still reproducible in tests.
    breaker_threshold:
        Consecutive failures of one failure domain (e.g. one source
        directory) that trip its circuit breaker; ``0`` disables the
        breaker.
    breaker_cooldown:
        Seconds an open breaker waits before letting one half-open
        probe through.
    deadline:
        Overall wall-clock budget in seconds for the whole run; when
        exhausted, remaining tasks are quarantined with
        :class:`~repro.errors.DeadlineExceededError`.  ``None``
        disables the run deadline.
    heartbeat_interval:
        How often (seconds) each worker refreshes its shared liveness
        stamp.
    heartbeat_grace:
        Seconds of heartbeat staleness after which a busy worker is
        declared hung and killed even before ``task_timeout``.
    retry_timeouts:
        Also spend the retry budget on timeouts and worker crashes
        (off by default; see ``max_retries``).
    """

    jobs: int = 1
    task_timeout: float | None = None
    max_retries: int = 2
    backoff: float = 0.05
    backoff_jitter: float = 0.0
    breaker_threshold: int = 5
    breaker_cooldown: float = 30.0
    deadline: float | None = None
    heartbeat_interval: float = 0.05
    heartbeat_grace: float = 10.0
    retry_timeouts: bool = False

    def __post_init__(self):
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {self.jobs}")
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff < 0:
            raise ValueError(f"backoff must be >= 0, got {self.backoff}")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError(
                f"backoff_jitter {self.backoff_jitter} outside [0, 1]")
        if self.breaker_threshold < 0:
            raise ValueError(
                f"breaker_threshold must be >= 0, "
                f"got {self.breaker_threshold}")
        if self.breaker_cooldown < 0:
            raise ValueError(
                f"breaker_cooldown must be >= 0, "
                f"got {self.breaker_cooldown}")
        for name in ("task_timeout", "deadline"):
            value = getattr(self, name)
            if value is not None and value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        if self.heartbeat_interval <= 0 or self.heartbeat_grace <= 0:
            raise ValueError("heartbeat_interval and heartbeat_grace "
                             "must be positive")

    @property
    def supervised(self) -> bool:
        """True when this policy needs the process-pool supervisor.

        A policy with ``jobs == 1`` and no timeout/deadline runs inline
        — that is the historical serial path, preserved exactly.
        """
        return (self.jobs > 1 or self.task_timeout is not None
                or self.deadline is not None)

    def delay_for(self, attempt: int, rng) -> float:
        """Backoff delay in seconds before retry number *attempt* (0-based).

        Exponential in *attempt* with multiplicative jitter drawn from
        *rng* (any object with ``random()``); deterministic for a
        seeded RNG, and exactly ``backoff * 2**attempt`` when
        ``backoff_jitter`` is 0.
        """
        base = self.backoff * (2 ** attempt)
        if self.backoff_jitter == 0.0:
            return base
        return base * (1.0 + self.backoff_jitter * rng.random())

    def replace(self, **changes) -> "ResiliencePolicy":
        """A copy of this policy with *changes* applied."""
        return dataclasses.replace(self, **changes)


# The do-nothing policy: inline execution, the pre-resilience defaults.
SERIAL_POLICY = ResiliencePolicy()
