"""The retry budget: a token bucket standing between failure and retry.

Naive retry loops turn a brown-out into a black-out: when a server
slows down, every client multiplies its traffic by its retry count at
exactly the moment capacity is scarcest.  The :class:`RetryBudget`
bounds that amplification — every retry (and every hedged backup
request, which is a speculative retry) must withdraw a token from a
bucket that refills at a fixed rate.  A short blip retries freely out
of the burst capacity; a sustained outage drains the bucket and
further failures surface immediately as typed
:class:`~repro.errors.RetryBudgetExhaustedError` instead of piling on.

Built on the same :class:`~repro.serve.admission.TokenBucket` the
server's admission controller sheds with, so both ends of the wire
meter load with one mechanism (and one set of unit-tested semantics).
"""

from __future__ import annotations

import threading
import time
from typing import Callable

from ..serve.admission import TokenBucket

__all__ = ["RetryBudget"]


class RetryBudget:
    """Token-bucket allowance for retries and hedges, with accounting.

    Parameters
    ----------
    rate:
        Tokens refilled per second.  ``0`` disables refill: the bucket
        holds a fixed total allowance of ``capacity`` retries.
    capacity:
        Burst capacity (and, with ``rate=0``, the total allowance).
    clock:
        Injectable monotonic clock for deterministic tests.

    ``try_spend`` never blocks and never raises; the caller decides
    what exhaustion means (the client raises
    :class:`~repro.errors.RetryBudgetExhaustedError` for retries and
    silently skips the backup request for hedges).
    """

    def __init__(self, rate: float = 2.0, capacity: float = 10.0,
                 clock: Callable[[], float] = time.monotonic):
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        # rate=0 is a *frozen* bucket here (fixed allowance), which is
        # the opposite of TokenBucket's rate=0 (always admit): model it
        # as an astronomically slow refill instead.
        self._frozen = rate == 0
        self._bucket = TokenBucket(rate if rate > 0 else 1e-9,
                                   burst=capacity, clock=clock)
        self.rate = float(rate)
        self.capacity = float(capacity)
        self._lock = threading.Lock()
        self.spent = 0
        self.denied = 0

    def try_spend(self, tokens: float = 1.0) -> bool:
        """Withdraw *tokens* for one retry/hedge; False when dry."""
        ok = self._bucket.try_acquire(tokens) == 0.0
        with self._lock:
            if ok:
                self.spent += 1
            else:
                self.denied += 1
        return ok

    @property
    def remaining(self) -> float:
        """Tokens currently available (refilled view, non-consuming)."""
        with self._bucket._lock:
            now = self._bucket.clock()
            return min(self._bucket.burst,
                       self._bucket._tokens
                       + (now - self._bucket._stamp) * self._bucket.rate)

    def to_dict(self) -> dict:
        """Snapshot for diagnostics: rate/capacity/spent/denied."""
        with self._lock:
            return {
                "rate": self.rate,
                "capacity": self.capacity,
                "spent": self.spent,
                "denied": self.denied,
                "remaining": round(self.remaining, 6),
            }
