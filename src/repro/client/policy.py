"""``ClientPolicy`` — every resilience knob of the client in one object.

The client-side mirror of :class:`repro.resilience.ResiliencePolicy`:
one frozen, validated dataclass threaded through
:class:`~repro.client.ReproClient` instead of a drifting pile of
keyword arguments.  The policy says how long one attempt may take
(``attempt_timeout``), how much wall clock a whole call may spend
(``call_timeout``), how failures are retried (``max_attempts`` /
``backoff`` / ``backoff_jitter`` governed by the token-bucket retry
budget), when hedged backup requests launch for idempotent reads
(``hedge``/``hedge_delay``), and when a failing host trips its circuit
breaker (``breaker_threshold``/``breaker_cooldown``).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

__all__ = ["ClientPolicy", "DEFAULT_CLIENT_POLICY"]

#: HTTP statuses the retry loop may spend budget on; everything else in
#: the 4xx range is the caller's bug and is surfaced immediately.
RETRYABLE_STATUSES = frozenset({429, 500, 502, 503, 504})


@dataclass(frozen=True)
class ClientPolicy:
    """Resilience knobs for one :class:`~repro.client.ReproClient`.

    Parameters
    ----------
    connect_timeout:
        Seconds to wait for the TCP connect of one attempt.
    attempt_timeout:
        Socket read budget for one attempt; the effective per-attempt
        timeout is ``min(attempt_timeout, remaining deadline)``.
    call_timeout:
        Default wall-clock budget for one logical call (retries and
        hedges included).  A per-call ``deadline=`` overrides it.
    session_deadline:
        Optional whole-client wall budget: once a client instance has
        spent this many seconds across all calls, further calls fail
        fast with :class:`~repro.errors.ClientDeadlineError`.
    max_attempts:
        Total tries for one call (first attempt + retries).
    backoff / backoff_jitter:
        Jittered exponential backoff between retries, same formula as
        :meth:`repro.resilience.ResiliencePolicy.delay_for` (delay =
        ``backoff * 2**attempt * (1 + jitter*U[0,1))``).
    retry_budget_rate / retry_budget_capacity:
        Token bucket governing *all* retries this client launches:
        each retry spends one token, tokens refill at ``rate`` per
        second up to ``capacity``.  An empty bucket raises
        :class:`~repro.errors.RetryBudgetExhaustedError` instead of
        retrying — a fleet of clients cannot amplify an outage into a
        retry storm.  ``rate=0`` freezes the bucket at its initial
        capacity (a fixed total retry allowance).
    honor_retry_after / retry_after_cap:
        Obey the server's ``Retry-After`` hint (capped at
        ``retry_after_cap`` seconds) when it exceeds the computed
        backoff delay.
    hedge:
        Enable hedged backup requests for idempotent GETs: when the
        primary attempt is still unanswered after the hedge delay, one
        backup is launched and the first response wins.
    hedge_delay:
        Seconds before launching the backup.  ``None`` derives the
        delay from the client's observed p95 GET latency (the
        tail-latency cure from "The Tail at Scale"), falling back to
        ``hedge_fallback_delay`` until ``hedge_min_samples`` latencies
        have been observed.
    hedge_fallback_delay / hedge_min_samples:
        The cold-start hedge delay, and how many successful GET
        latencies must be seen before switching to the p95.
    min_attempt_budget:
        Do not launch an attempt with less than this many seconds of
        deadline remaining — fail fast with
        :class:`~repro.errors.ClientDeadlineError` instead of a doomed
        round-trip.
    breaker_threshold / breaker_cooldown:
        Per-host circuit breaker: consecutive transport/5xx failures
        that trip it, and seconds it stays open
        (:class:`repro.resilience.CircuitBreaker` semantics;
        ``threshold=0`` disables).
    """

    connect_timeout: float = 5.0
    attempt_timeout: float = 30.0
    call_timeout: float = 60.0
    session_deadline: float | None = None
    max_attempts: int = 4
    backoff: float = 0.05
    backoff_jitter: float = 0.5
    retry_budget_rate: float = 2.0
    retry_budget_capacity: float = 10.0
    honor_retry_after: bool = True
    retry_after_cap: float = 10.0
    hedge: bool = True
    hedge_delay: float | None = None
    hedge_fallback_delay: float = 0.1
    hedge_min_samples: int = 8
    min_attempt_budget: float = 0.001
    breaker_threshold: int = 8
    breaker_cooldown: float = 10.0

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        for name in ("connect_timeout", "attempt_timeout", "call_timeout",
                     "hedge_fallback_delay", "min_attempt_budget"):
            value = getattr(self, name)
            if value <= 0:
                raise ValueError(f"{name} must be positive, got {value}")
        for name in ("backoff", "retry_budget_rate", "retry_after_cap",
                     "breaker_cooldown"):
            value = getattr(self, name)
            if value < 0:
                raise ValueError(f"{name} must be >= 0, got {value}")
        if not 0.0 <= self.backoff_jitter <= 1.0:
            raise ValueError(
                f"backoff_jitter {self.backoff_jitter} outside [0, 1]")
        if self.retry_budget_capacity < 1:
            raise ValueError(
                f"retry_budget_capacity must be >= 1, "
                f"got {self.retry_budget_capacity}")
        if self.session_deadline is not None and self.session_deadline <= 0:
            raise ValueError(
                f"session_deadline must be positive, "
                f"got {self.session_deadline}")
        if self.hedge_delay is not None and self.hedge_delay < 0:
            raise ValueError(
                f"hedge_delay must be >= 0, got {self.hedge_delay}")
        if self.hedge_min_samples < 1:
            raise ValueError(
                f"hedge_min_samples must be >= 1, "
                f"got {self.hedge_min_samples}")
        if self.breaker_threshold < 0:
            raise ValueError(
                f"breaker_threshold must be >= 0, "
                f"got {self.breaker_threshold}")

    def delay_for(self, attempt: int, rng) -> float:
        """Backoff delay before retry number *attempt* (0-based).

        Exponential in *attempt* with multiplicative jitter drawn from
        *rng* (any object with ``random()``), matching the
        :class:`~repro.resilience.ResiliencePolicy` formula so the two
        halves of the stack back off identically.
        """
        base = self.backoff * (2 ** attempt)
        if self.backoff_jitter == 0.0:
            return base
        return base * (1.0 + self.backoff_jitter * rng.random())

    def retry_delay(self, attempt: int, rng,
                    retry_after: float | None) -> float:
        """The actual pause before a retry: backoff vs server hint.

        The server's ``Retry-After`` (when honored) acts as a *floor* —
        retrying sooner than the server asked is rude and futile — and
        ``retry_after_cap`` bounds how long a hint may stall the call.
        """
        delay = self.delay_for(attempt, rng)
        if self.honor_retry_after and retry_after is not None:
            delay = max(delay, min(float(retry_after),
                                   self.retry_after_cap))
        return delay

    def replace(self, **changes) -> "ClientPolicy":
        """A copy of this policy with *changes* applied."""
        return dataclasses.replace(self, **changes)


#: The defaults: 4 attempts, hedged reads, a 10-token retry bucket.
DEFAULT_CLIENT_POLICY = ClientPolicy()
