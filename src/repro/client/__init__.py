"""End-to-end resilient access to a ``repro serve`` endpoint.

The :mod:`repro.client` package is the *only* sanctioned way for repro
code to make outbound HTTP calls (lint rule RPR011 enforces this): it
packages deadline propagation, budgeted retries, hedged reads,
idempotency keys, and per-host circuit breaking behind one typed API.

Entry points
------------
:class:`ReproClient`
    The client itself — ``with ReproClient(url) as c: c.query(...)``.
:class:`ClientPolicy` / :data:`DEFAULT_CLIENT_POLICY`
    Frozen dataclass of every resilience knob.
:class:`RetryBudget`
    The token bucket bounding retry amplification.

The server-side halves of the contract live in
:mod:`repro.serve.idempotency` (replay cache) and
:class:`repro.serve.AnalysisService` (deadline admission); the shared
header names are :data:`~repro.client.client.DEADLINE_HEADER`,
:data:`~repro.client.client.IDEMPOTENCY_HEADER`, and
:data:`~repro.client.client.REQUEST_ID_HEADER`.
"""

from .budget import RetryBudget
from .client import (
    DEADLINE_HEADER,
    IDEMPOTENCY_HEADER,
    REQUEST_ID_HEADER,
    ClientResponse,
    ReproClient,
)
from .policy import DEFAULT_CLIENT_POLICY, RETRYABLE_STATUSES, ClientPolicy

__all__ = [
    "ReproClient",
    "ClientResponse",
    "ClientPolicy",
    "DEFAULT_CLIENT_POLICY",
    "RetryBudget",
    "RETRYABLE_STATUSES",
    "DEADLINE_HEADER",
    "IDEMPOTENCY_HEADER",
    "REQUEST_ID_HEADER",
]
