"""``ReproClient`` — the resilient way to talk to ``repro serve``.

A typed wrapper over stdlib :mod:`http.client` that owns every
client-side half of the end-to-end resilience contract:

* **Deadlines** — each logical call gets a wall-clock budget
  (``deadline=`` or ``ClientPolicy.call_timeout``, further capped by
  the whole-session ``session_deadline``).  The *remaining* budget is
  stamped on every attempt as ``X-Repro-Deadline-Ms`` — a duration,
  not a wall time, so clock skew between machines is irrelevant — and
  the server refuses already-expired work before queueing it.
* **Retries with a budget** — transient failures (connection drops,
  429/5xx envelopes) are retried with jittered exponential backoff,
  honoring the server's ``Retry-After``; every retry must withdraw a
  token from the client-wide :class:`~repro.client.RetryBudget`, so a
  sustained outage degrades into fast typed
  :class:`~repro.errors.RetryBudgetExhaustedError` instead of a retry
  storm.
* **Idempotency keys** — unsafe methods are auto-stamped with
  ``X-Repro-Idempotency-Key``, so a retried ``/v1/ingest`` whose first
  delivery actually succeeded replays the original result instead of
  double-ingesting.
* **Hedged reads** — for idempotent GETs, when the primary attempt is
  still unanswered after a p95-derived hedge delay, one backup request
  launches (both legs share an idempotency key, so the server
  coalesces them onto one execution); the first success wins and the
  loser's socket is closed.  Hedges spend retry-budget tokens too.
* **Per-host circuit breaker** — a host that keeps failing trips its
  :class:`~repro.resilience.CircuitBreaker` and further calls fail
  fast with :class:`~repro.errors.ClientCircuitOpenError`.

Every failure leaves as a typed :class:`~repro.errors.ClientError`;
nothing escapes as a bare ``OSError`` or ``http.client`` exception.
All activity is traced under literal ``client.*`` names.
"""

from __future__ import annotations

import http.client
import json
import queue
import random
import socket
import threading
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable
from urllib.parse import urlsplit

from ..errors import (
    ClientCircuitOpenError,
    ClientDeadlineError,
    ClientError,
    RetryBudgetExhaustedError,
    ServeError,
    ServerRejectedError,
    TransportError,
)
from ..obs import counter as obs_counter
from ..obs import observe as obs_observe
from ..obs import span as obs_span
from ..resilience import CircuitBreaker
from .budget import RetryBudget
from .policy import DEFAULT_CLIENT_POLICY, RETRYABLE_STATUSES, ClientPolicy

__all__ = ["ReproClient", "ClientResponse",
           "IDEMPOTENCY_HEADER", "DEADLINE_HEADER", "REQUEST_ID_HEADER"]

#: remaining call budget in integer milliseconds (duration, not wall time)
DEADLINE_HEADER = "X-Repro-Deadline-Ms"
#: replay-cache key for at-least-once delivery of unsafe methods
IDEMPOTENCY_HEADER = "X-Repro-Idempotency-Key"
#: server-assigned correlation id echoed on every response
REQUEST_ID_HEADER = "X-Repro-Request-Id"

_LATENCY_WINDOW = 128  # GET latencies kept for the p95 hedge delay


@dataclass(frozen=True)
class ClientResponse:
    """One successful exchange: status, parsed body, response headers."""

    status: int
    body: dict
    headers: dict = field(default_factory=dict)
    request_id: str | None = None
    hedged: bool = False


def _default_connection_factory(host: str, port: int, timeout: float):
    """Open a plain HTTP connection (the transport seam tests replace)."""
    return http.client.HTTPConnection(host, port, timeout=timeout)


class ReproClient:
    """Resilient typed HTTP client for one ``repro serve`` endpoint.

    Parameters
    ----------
    base_url:
        ``http://host:port`` of the server (a path prefix is allowed
        and prepended to every request path).
    policy:
        The :class:`~repro.client.ClientPolicy`; defaults to
        :data:`~repro.client.DEFAULT_CLIENT_POLICY`.
    client_id:
        Sent as ``X-Client-Id`` so the server's per-client admission
        breaker sees a stable identity across connections.
    clock / rng / sleep:
        Injectable monotonic clock, jitter RNG, and sleep seam (tests
        run the full retry schedule without real waiting).  The default
        sleep waits on the client's close event, so :meth:`close`
        aborts in-flight backoff pauses.
    key_factory:
        Generator for idempotency keys (default: random UUID hex).
    connection_factory:
        ``(host, port, timeout) -> HTTPConnection``; the transport
        seam, replaceable for socket-free tests.
    """

    def __init__(self, base_url: str, *,
                 policy: ClientPolicy | None = None,
                 client_id: str | None = None,
                 clock: Callable[[], float] = time.monotonic,
                 rng: random.Random | None = None,
                 sleep: Callable[[float], None] | None = None,
                 key_factory: Callable[[], str] | None = None,
                 connection_factory=None):
        parts = urlsplit(base_url)
        if parts.scheme not in ("http", ""):
            raise ValueError(
                f"unsupported scheme {parts.scheme!r} in {base_url!r}: "
                f"only http:// is supported")
        if not parts.hostname:
            raise ValueError(f"no host in base url {base_url!r}")
        self.host = parts.hostname
        self.port = parts.port or 80
        self.path_prefix = parts.path.rstrip("/")
        self.policy = policy or DEFAULT_CLIENT_POLICY
        self.client_id = client_id
        self.clock = clock
        self._rng = rng if rng is not None else random.Random()
        self._closed = threading.Event()
        self._sleep = sleep if sleep is not None else self._closed.wait
        self._key_factory = key_factory or (lambda: uuid.uuid4().hex)
        self._connect = connection_factory or _default_connection_factory
        self.budget = RetryBudget(self.policy.retry_budget_rate,
                                  self.policy.retry_budget_capacity,
                                  clock=clock)
        self.breaker = CircuitBreaker(self.policy.breaker_threshold,
                                      self.policy.breaker_cooldown,
                                      clock=clock)
        self._host_key = f"{self.host}:{self.port}"
        self._session_start = clock()
        self._lat_lock = threading.Lock()
        self._latencies: list[float] = []
        self.retries = 0
        self.hedges = 0
        self.hedge_wins = 0

    # -- lifecycle ------------------------------------------------------
    def close(self) -> None:
        """Release the client: pending backoff sleeps are aborted."""
        self._closed.set()

    def __enter__(self) -> "ReproClient":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- deadline arithmetic -------------------------------------------
    def _give_up_at(self, deadline: float | None) -> float:
        """Absolute monotonic instant this call must be finished by."""
        now = self.clock()
        budget = self.policy.call_timeout if deadline is None \
            else float(deadline)
        give_up = now + budget
        if self.policy.session_deadline is not None:
            give_up = min(give_up, self._session_start
                          + self.policy.session_deadline)
        return give_up

    def session_remaining(self) -> float | None:
        """Seconds left of the whole-session deadline (None: unlimited)."""
        if self.policy.session_deadline is None:
            return None
        return max(0.0, self._session_start
                   + self.policy.session_deadline - self.clock())

    # -- hedging --------------------------------------------------------
    def _record_latency(self, seconds: float) -> None:
        with self._lat_lock:
            self._latencies.append(seconds)
            if len(self._latencies) > _LATENCY_WINDOW:
                del self._latencies[:len(self._latencies)
                                    - _LATENCY_WINDOW]

    def hedge_delay(self) -> float:
        """Current hedge delay: configured, or the observed GET p95."""
        if self.policy.hedge_delay is not None:
            return self.policy.hedge_delay
        with self._lat_lock:
            lat = sorted(self._latencies)
        if len(lat) < self.policy.hedge_min_samples:
            return self.policy.hedge_fallback_delay
        return lat[min(len(lat) - 1, int(0.95 * len(lat)))]

    # -- one attempt ----------------------------------------------------
    def _headers(self, key: str | None, remaining: float) -> dict:
        headers = {
            "Content-Type": "application/json",
            DEADLINE_HEADER: str(max(1, int(remaining * 1000.0))),
        }
        if self.client_id:
            headers["X-Client-Id"] = self.client_id
        if key:
            headers[IDEMPOTENCY_HEADER] = key
        return headers

    def _attempt(self, method: str, path: str, data: bytes | None,
                 key: str | None, give_up: float, target: str,
                 on_connect: Callable[[Any], None] | None = None
                 ) -> ClientResponse:
        """One HTTP exchange; raises typed Transport/ServerRejected."""
        remaining = give_up - self.clock()
        if remaining < self.policy.min_attempt_budget:
            raise ClientDeadlineError(
                f"no deadline budget left for an attempt of {target} "
                f"({remaining:.3f}s remaining)", source=target)
        timeout = min(self.policy.attempt_timeout, remaining)
        conn = self._connect(self.host, self.port, timeout)
        if on_connect is not None:
            on_connect(conn)
        started = self.clock()
        try:
            conn.request(method, path, body=data,
                         headers=self._headers(key, remaining))
            resp = conn.getresponse()
            raw = resp.read()
            status = resp.status
            resp_headers = {k.lower(): v for k, v in resp.getheaders()}
        except (OSError, http.client.HTTPException) as exc:
            self.breaker.record_failure(self._host_key)
            obs_counter("client.transport_errors")
            raise TransportError(
                f"{type(exc).__name__} talking to {target}: {exc}",
                source=target) from exc
        finally:
            conn.close()
        elapsed = self.clock() - started
        obs_observe("client.latency_seconds", elapsed)
        try:
            body = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            body = {"raw": raw.decode("utf-8", "replace")}
        if not isinstance(body, dict):
            body = {"value": body}
        request_id = resp_headers.get(REQUEST_ID_HEADER.lower())
        if status >= 400:
            err = body.get("error") or {}
            retry_after = err.get("retry_after")
            if retry_after is None and "retry-after" in resp_headers:
                try:
                    retry_after = float(resp_headers["retry-after"])
                except ValueError:
                    retry_after = None
            # 5xx that isn't an explicit overload answer counts against
            # the host's breaker; 4xx and typed 429/503 sheds mean the
            # host itself is alive and answering
            if status in (500, 502, 504):
                self.breaker.record_failure(self._host_key)
            else:
                self.breaker.record_success(self._host_key)
            raise ServerRejectedError(
                f"{target} answered {status} "
                f"{err.get('code', 'error')}: "
                f"{err.get('message', body.get('raw', ''))}",
                status=status, code=err.get("code", f"http_{status}"),
                retry_after=retry_after, source=target,
                request_id=request_id)
        self.breaker.record_success(self._host_key)
        if method == "GET":
            self._record_latency(elapsed)
        return ClientResponse(status=status, body=body,
                              headers=resp_headers, request_id=request_id)

    def _attempt_hedged(self, method: str, path: str, data: bytes | None,
                        key: str | None, give_up: float,
                        target: str) -> ClientResponse:
        """Primary attempt + optional backup after the hedge delay.

        The first *success* wins and the loser's socket is closed (the
        server coalesces the duplicate onto one execution via the
        shared idempotency key).  When one leg fails, the other leg's
        outcome decides; when both fail, the primary's error
        propagates.  The backup spends one retry-budget token; with an
        empty bucket no hedge launches.
        """
        results: "queue.Queue[tuple[str, ClientResponse | None, BaseException | None]]" = queue.Queue()
        conns: dict[str, Any] = {}
        conns_lock = threading.Lock()

        def leg(tag: str) -> None:
            def grab(conn: Any) -> None:
                with conns_lock:
                    conns[tag] = conn
            try:
                results.put((tag, self._attempt(
                    method, path, data, key, give_up, target,
                    on_connect=grab), None))
            except BaseException as exc:  # pragma: hedge leg boundary —
                # the outcome is transported to the coordinating thread
                # through the queue and re-raised there; anything the
                # stdlib throws from a cancelled half-read exchange is
                # normalized so only typed errors ever escape
                if not isinstance(exc, (ClientError, ServeError)):
                    wrapped = TransportError(
                        f"{type(exc).__name__} in hedge {tag} leg for "
                        f"{target}: {exc}", source=target)
                    wrapped.__cause__ = exc
                    exc = wrapped
                results.put((tag, None, exc))

        threading.Thread(target=leg, args=("primary",),
                         name="repro-client-primary", daemon=True).start()
        launched = ["primary"]
        first: tuple[str, ClientResponse | None, BaseException | None] | None
        try:
            first = results.get(timeout=min(self.hedge_delay(),
                                            max(0.0, give_up - self.clock())))
        except queue.Empty:
            first = None
        if first is None and self.budget.try_spend():
            # the primary is past the hedge delay: launch the backup
            obs_counter("client.hedges")
            self.hedges += 1
            threading.Thread(target=leg, args=("backup",),
                             name="repro-client-backup",
                             daemon=True).start()
            launched.append("backup")
        outcomes: dict[str, tuple[ClientResponse | None, BaseException | None]] = {}
        if first is not None:
            outcomes[first[0]] = (first[1], first[2])
        while len(outcomes) < len(launched):
            got_ok = any(r is not None for r, _ in outcomes.values())
            if got_ok:
                break
            remaining = give_up - self.clock()
            if remaining <= 0:
                break
            try:
                tag, resp, exc = results.get(timeout=remaining)
            except queue.Empty:
                break
            outcomes[tag] = (resp, exc)
        self._cancel_losers(outcomes, conns, conns_lock)
        for tag in ("backup", "primary"):  # a backup win is the hedge win
            got = outcomes.get(tag)
            if got is not None and got[0] is not None:
                if tag == "backup":
                    obs_counter("client.hedge_wins")
                    self.hedge_wins += 1
                resp = got[0]
                return ClientResponse(status=resp.status, body=resp.body,
                                      headers=resp.headers,
                                      request_id=resp.request_id,
                                      hedged=len(launched) > 1)
        for tag in ("primary", "backup"):
            got = outcomes.get(tag)
            if got is not None and got[1] is not None:
                raise got[1]
        raise ClientDeadlineError(
            f"deadline expired waiting for {target} "
            f"({len(launched)} request(s) in flight)", source=target)

    @staticmethod
    def _cancel_losers(outcomes: dict, conns: dict,
                       conns_lock: threading.Lock) -> None:
        """Wake and abandon any leg that has not reported back.

        ``conn.close()`` would tear down through the in-flight
        ``HTTPResponse`` and block on its reader lock — held by the
        loser thread sitting in ``read()`` — for as long as the server
        dawdles, forfeiting the hedge win.  ``shutdown()`` on the raw
        socket wakes the blocked ``recv`` immediately instead; the leg
        thread then surfaces its own (typed) outcome to the queue.
        """
        with conns_lock:
            pending = {tag: c for tag, c in conns.items()
                       if tag not in outcomes}
        for conn in pending.values():
            sock = getattr(conn, "sock", None)
            try:
                if sock is not None:
                    sock.shutdown(socket.SHUT_RDWR)
                else:
                    conn.close()
            except OSError:  # pragma: cancellation is best-effort; the
                # leg thread will surface its own outcome to the queue
                pass

    # -- the retry loop -------------------------------------------------
    def request(self, method: str, path: str, body: dict | None = None, *,
                deadline: float | None = None,
                idempotency_key: str | None = None,
                hedge: bool | None = None) -> ClientResponse:
        """One logical call: retries, hedging, deadlines, typed errors.

        Parameters
        ----------
        method / path / body:
            The HTTP exchange (*body* is JSON-encoded when not None).
        deadline:
            Wall-clock budget in seconds for the whole call, retries
            included (default ``ClientPolicy.call_timeout``); the
            remaining budget is propagated as ``X-Repro-Deadline-Ms``.
        idempotency_key:
            Replay-cache key; auto-generated for unsafe methods (and
            for hedged GETs, where both legs share it).
        hedge:
            Force hedging on/off for this call (default: policy says,
            GETs only).

        Returns a :class:`ClientResponse`; raises a typed
        :class:`~repro.errors.ClientError` subclass on any failure.
        """
        method = method.upper()
        path = self.path_prefix + path
        unsafe = method not in ("GET", "HEAD")
        key = idempotency_key
        if key is None and unsafe:
            key = self._key_factory()
        do_hedge = (self.policy.hedge if hedge is None else hedge) \
            and not unsafe
        if do_hedge and key is None:
            key = self._key_factory()
        data = json.dumps(body, sort_keys=True).encode("utf-8") \
            if body is not None else None
        target = f"{method} {self._host_key}{path}"
        give_up = self._give_up_at(deadline)
        attempt = 0
        with obs_span("client.request"):
            obs_counter("client.requests")
            while True:
                if not self.breaker.allow(self._host_key):
                    obs_counter("client.breaker_fastfails")
                    raise ClientCircuitOpenError(
                        f"circuit breaker open for {self._host_key} "
                        f"(retry in "
                        f"{self.breaker.retry_after(self._host_key):.1f}s)",
                        source=target)
                try:
                    if do_hedge:
                        return self._attempt_hedged(method, path, data,
                                                    key, give_up, target)
                    return self._attempt(method, path, data, key,
                                         give_up, target)
                except (TransportError, ServerRejectedError) as exc:
                    retry_after = getattr(exc, "retry_after", None)
                    if not self._retryable(exc, unsafe, key):
                        raise
                    attempt += 1
                    if attempt >= self.policy.max_attempts:
                        raise
                    if not self.budget.try_spend():
                        obs_counter("client.budget_denials")
                        raise RetryBudgetExhaustedError(
                            f"retry budget exhausted after "
                            f"{self.budget.spent} retries "
                            f"(capacity "
                            f"{self.policy.retry_budget_capacity:g}, "
                            f"refill "
                            f"{self.policy.retry_budget_rate:g}/s); "
                            f"last failure: {exc}",
                            source=target,
                            request_id=getattr(exc, "request_id", None),
                            ) from exc
                    delay = self.policy.retry_delay(attempt - 1,
                                                    self._rng, retry_after)
                    if self.clock() + delay \
                            + self.policy.min_attempt_budget > give_up:
                        raise ClientDeadlineError(
                            f"deadline leaves no room to retry {target} "
                            f"(needed {delay:.3f}s backoff, "
                            f"{max(0.0, give_up - self.clock()):.3f}s "
                            f"left)", source=target) from exc
                    obs_counter("client.retries")
                    self.retries += 1
                    if delay > 0:
                        self._sleep(delay)

    @staticmethod
    def _retryable(exc: ClientError, unsafe: bool,
                   key: str | None) -> bool:
        """May this failure be retried for this request?

        Transport failures on unsafe methods are only safe to retry
        because the idempotency key makes redelivery a replay; without
        a key (caller passed ``idempotency_key=''``-ish) nothing unsafe
        is retried.
        """
        if unsafe and not key:
            return False
        if isinstance(exc, TransportError):
            return True
        if isinstance(exc, ServerRejectedError):
            return exc.status in RETRYABLE_STATUSES
        return False

    # -- endpoint conveniences -----------------------------------------
    def health(self, *, deadline: float | None = None) -> dict:
        """``GET /healthz`` — liveness body."""
        return self.request("GET", "/healthz", deadline=deadline).body

    def ready(self, *, deadline: float | None = None) -> tuple[bool, dict]:
        """``GET /readyz`` — ``(ready, body)``; a 503 is an answer."""
        try:
            return True, self.request("GET", "/readyz", hedge=False,
                                      deadline=deadline).body
        except ServerRejectedError as exc:
            if exc.status == 503:
                return False, {"status": "unavailable", "code": exc.code}
            raise

    def datasets(self, *, deadline: float | None = None) -> list[str]:
        """``GET /v1/datasets`` — sorted dataset names."""
        return list(self.request("GET", "/v1/datasets",
                                 deadline=deadline).body["datasets"])

    def metrics(self, *, deadline: float | None = None) -> dict:
        """``GET /v1/metrics`` — the server's metrics snapshot."""
        return self.request("GET", "/v1/metrics", deadline=deadline).body

    def query(self, dataset: str, query: str, *, squash: bool = True,
              deadline: float | None = None) -> dict:
        """``POST /v1/query`` — run a string-dialect query remotely."""
        return self.request("POST", "/v1/query",
                            {"dataset": dataset, "query": query,
                             "squash": squash}, deadline=deadline).body

    def stats(self, dataset: str, *, metrics: list[str] | None = None,
              columns: list[str] | None = None,
              deadline: float | None = None) -> dict:
        """``POST /v1/stats`` — aggregate statistics for a dataset."""
        payload: dict[str, Any] = {"dataset": dataset}
        if metrics is not None:
            payload["metrics"] = list(metrics)
        if columns is not None:
            payload["columns"] = list(columns)
        return self.request("POST", "/v1/stats", payload,
                            deadline=deadline).body

    def ingest(self, dataset: str, profiles: list, *,
               overwrite: bool = False,
               deadline: float | None = None) -> dict:
        """``POST /v1/ingest`` — upload profiles as a new dataset.

        Auto-stamped with an idempotency key, so a retry after a torn
        response replays the completed ingest instead of duplicating
        it.
        """
        return self.request("POST", "/v1/ingest",
                            {"dataset": dataset, "profiles": profiles,
                             "overwrite": overwrite},
                            deadline=deadline).body

    def to_dict(self) -> dict:
        """Diagnostics snapshot: budget, breaker, hedge accounting."""
        return {
            "host": self._host_key,
            "budget": self.budget.to_dict(),
            "breaker_state": self.breaker.state(self._host_key),
            "retries": self.retries,
            "hedges": self.hedges,
            "hedge_wins": self.hedge_wins,
            "hedge_delay": round(self.hedge_delay(), 6),
        }
