"""Region annotation API (the Caliper instrumentation substitute).

Applications mark regions of interest; nested regions build a call
tree; registered metric services attribute measurements to the
innermost open region.  Usage::

    cali = Instrumenter()
    with cali.region("main"):
        with cali.region("solve"):
            ...work...
    profile = cali.finish()   # -> in-memory profile dict

The produced profile is the same shape the synthetic workload
generators emit, so real measurement and simulation share the writer
and reader code paths.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterator, Sequence

__all__ = ["RegionNode", "Instrumenter", "annotate"]


class RegionNode:
    """One node of the measured call tree with accumulated metrics."""

    __slots__ = ("name", "parent", "children", "metrics", "visits")

    def __init__(self, name: str, parent: "RegionNode | None" = None):
        self.name = name
        self.parent = parent
        self.children: dict[str, RegionNode] = {}
        self.metrics: dict[str, float] = {}
        self.visits = 0

    def child(self, name: str) -> "RegionNode":
        node = self.children.get(name)
        if node is None:
            node = RegionNode(name, parent=self)
            self.children[name] = node
        return node

    def accumulate(self, metrics: dict[str, float]) -> None:
        for k, v in metrics.items():
            self.metrics[k] = self.metrics.get(k, 0.0) + v

    def path(self) -> tuple[str, ...]:
        parts: list[str] = []
        cur: RegionNode | None = self
        while cur is not None and cur.parent is not None:  # skip synthetic root
            parts.append(cur.name)
            cur = cur.parent
        return tuple(reversed(parts))


class Instrumenter:
    """Collects a call-tree profile from annotated regions.

    Parameters
    ----------
    services:
        Metric services (see :mod:`repro.caliper.services`); each is
        asked for a snapshot at region begin/end and the delta is
        attributed *exclusively* to the region (time spent in nested
        regions is subtracted out, Caliper's exclusive semantics).
    """

    def __init__(self, services: Sequence["MetricService"] | None = None):
        from .services import TimerService

        self.services = list(services) if services is not None else [TimerService()]
        self._root = RegionNode("<root>")
        self._stack: list[RegionNode] = [self._root]
        self._open_snapshots: list[dict[str, float]] = []
        self._child_costs: list[dict[str, float]] = [dict()]

    # ------------------------------------------------------------------
    def begin(self, name: str) -> None:
        node = self._stack[-1].child(name)
        node.visits += 1
        self._stack.append(node)
        self._open_snapshots.append(self._snapshot())
        self._child_costs.append({})

    def end(self, name: str | None = None) -> None:
        if len(self._stack) <= 1:
            raise RuntimeError("end() without matching begin()")
        node = self._stack.pop()
        if name is not None and node.name != name:
            raise RuntimeError(
                f"region mismatch: ending {name!r} but {node.name!r} is open"
            )
        start = self._open_snapshots.pop()
        child_cost = self._child_costs.pop()
        now = self._snapshot()
        inclusive = {k: now[k] - start.get(k, 0.0) for k in now}
        exclusive = {
            k: inclusive[k] - child_cost.get(k, 0.0) for k in inclusive
        }
        node.accumulate(exclusive)
        # report our inclusive cost to the parent for its exclusive calc
        parent_costs = self._child_costs[-1]
        for k, v in inclusive.items():
            parent_costs[k] = parent_costs.get(k, 0.0) + v

    @contextmanager
    def region(self, name: str) -> Iterator[None]:
        self.begin(name)
        try:
            yield
        finally:
            self.end(name)

    def instrument(self, name: str | None = None) -> Callable:
        """Decorator form: ``@cali.instrument()``."""

        def wrap(fn: Callable) -> Callable:
            region_name = name or fn.__name__

            def wrapper(*args: Any, **kwargs: Any):
                with self.region(region_name):
                    return fn(*args, **kwargs)

            wrapper.__name__ = fn.__name__
            wrapper.__doc__ = fn.__doc__
            return wrapper

        return wrap

    # ------------------------------------------------------------------
    def _snapshot(self) -> dict[str, float]:
        snap: dict[str, float] = {}
        for svc in self.services:
            snap.update(svc.snapshot())
        return snap

    def finish(self, metadata: dict[str, Any] | None = None) -> dict:
        """Close measurement and emit an in-memory profile.

        Returns the dict structure understood by
        :func:`repro.caliper.writer.write_cali_json`.
        """
        if len(self._stack) != 1:
            open_regions = [n.name for n in self._stack[1:]]
            raise RuntimeError(f"unclosed regions at finish(): {open_regions}")

        records: list[dict] = []

        def emit(node: RegionNode, parent_path: tuple[str, ...]) -> None:
            path = parent_path + (node.name,)
            rec = {"path": path, "metrics": dict(node.metrics),
                   "visits": node.visits}
            records.append(rec)
            for child in node.children.values():
                emit(child, path)

        for top in self._root.children.values():
            emit(top, ())
        meta = dict(metadata or {})
        for svc in self.services:
            meta.update(svc.metadata())
        return {"records": records, "globals": meta}


_default = Instrumenter()


@contextmanager
def annotate(name: str) -> Iterator[None]:
    """Module-level convenience using a process-wide default instrumenter."""
    with _default.region(name):
        yield


# imported late to avoid a cycle in type checking
from .services import MetricService  # noqa: E402  (re-export for typing)
