"""Writer for the cali-JSON ("json-split") profile format.

This is the on-disk interchange format between measurement and
analysis, shaped after Caliper's ``json-split`` output that Hatchet's
Caliper reader consumes:

.. code-block:: json

    {
      "data":  [[0, 0.2, 100], [1, 0.1, 100]],
      "columns": ["path", "time (exc)", "Reps"],
      "column_metadata": [{"is_value": false}, {"is_value": true}, ...],
      "nodes": [{"label": "main", "column": "path"},
                {"label": "solve", "column": "path", "parent": 0}],
      "globals": {"cluster": "quartz", "compiler": "clang-9.0.0"}
    }

``nodes`` encodes the call tree via parent indices; each data row's
first cell is the node id it belongs to.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping, Sequence

__all__ = ["write_cali_json", "profile_to_cali_dict"]


def profile_to_cali_dict(profile: Mapping[str, Any]) -> dict:
    """Convert an Instrumenter/workload profile to the json-split dict.

    *profile* has ``records`` (list of ``{"path": tuple, "metrics":
    dict}``) and ``globals`` (run metadata).
    """
    records: Sequence[Mapping] = profile["records"]

    # Collect the full metric column set in first-seen order.
    metric_cols: dict[str, None] = {}
    for rec in records:
        for k in rec["metrics"]:
            metric_cols.setdefault(k, None)
    metric_cols = list(metric_cols)

    # Build the node table; paths are unique per profile.
    node_ids: dict[tuple, int] = {}
    nodes: list[dict] = []

    def node_id(path: tuple) -> int:
        known = node_ids.get(path)
        if known is not None:
            return known
        parent = node_id(path[:-1]) if len(path) > 1 else None
        nid = len(nodes)
        entry: dict[str, Any] = {"label": path[-1], "column": "path"}
        if parent is not None:
            entry["parent"] = parent
        nodes.append(entry)
        node_ids[path] = nid
        return nid

    data = []
    for rec in records:
        nid = node_id(tuple(rec["path"]))
        row: list[Any] = [nid]
        for col in metric_cols:
            row.append(rec["metrics"].get(col))
        data.append(row)

    return {
        "data": data,
        "columns": ["path"] + metric_cols,
        "column_metadata": [{"is_value": False}] + [
            {"is_value": True} for _ in metric_cols
        ],
        "nodes": nodes,
        "globals": dict(profile.get("globals", {})),
    }


def write_cali_json(profile: Mapping[str, Any], path: str | Path) -> Path:
    """Write a profile to *path* in json-split format; returns the path.

    The write is atomic (temp file + fsync + rename): a crash while a
    campaign is being written leaves complete profiles plus at most one
    invisible temp file, never a truncated profile.
    """
    from ..ioutil import atomic_write_text

    path = Path(path)
    payload = profile_to_cali_dict(profile)
    return atomic_write_text(path, json.dumps(payload, sort_keys=True))
