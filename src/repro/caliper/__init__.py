"""``repro.caliper`` — measurement substrate (Caliper/Adiak substitute)."""

from .adiak import AdiakCollector
from .annotation import Instrumenter, RegionNode, annotate
from .services import (
    LoopService,
    MemoryHighwaterService,
    MetricService,
    SyntheticCounterService,
    TimerService,
    TopdownService,
)
from .writer import profile_to_cali_dict, write_cali_json

__all__ = [
    "Instrumenter",
    "RegionNode",
    "annotate",
    "AdiakCollector",
    "MetricService",
    "LoopService",
    "MemoryHighwaterService",
    "TimerService",
    "SyntheticCounterService",
    "TopdownService",
    "profile_to_cali_dict",
    "write_cali_json",
]
