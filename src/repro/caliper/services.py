"""Metric services: pluggable measurement sources for the Instrumenter.

A service exposes monotonically accumulating counters via
``snapshot()``; the Instrumenter differences snapshots at region
begin/end.  Real wall-clock timing comes from :class:`TimerService`;
hardware-counter behaviour (the paper collects PAPI counters and Intel
top-down metrics through Caliper) is simulated by
:class:`SyntheticCounterService`, which advances counters according to
a user-supplied cost model — the closest laptop equivalent of a
counter multiplexing kernel module.
"""

from __future__ import annotations

import os
import platform
import time
from typing import Any, Callable, Mapping

__all__ = [
    "MetricService",
    "TimerService",
    "SyntheticCounterService",
    "TopdownService",
    "LoopService",
    "MemoryHighwaterService",
]


class MetricService:
    """Interface: monotone counter snapshots plus run metadata."""

    def snapshot(self) -> dict[str, float]:  # pragma: no cover - interface
        raise NotImplementedError

    def metadata(self) -> dict[str, Any]:
        return {}


class TimerService(MetricService):
    """Wall-clock time in seconds under the Caliper metric name.

    The monotonic clock is injectable (as in
    :class:`repro.caliper.adiak.AdiakCollector`) so tests can drive
    deterministic timings; it defaults to ``time.perf_counter``.
    """

    metric = "time (exc)"

    def __init__(self, clock: Callable[[], float] | None = None):
        self._clock = clock or time.perf_counter

    def snapshot(self) -> dict[str, float]:
        return {self.metric: self._clock()}

    def metadata(self) -> dict[str, Any]:
        return {
            "hostname": platform.node(),
            "pid": os.getpid(),
        }


class SyntheticCounterService(MetricService):
    """Counters advanced explicitly by a simulated workload.

    The workload calls :meth:`charge` with counter increments as it
    "executes"; the Instrumenter's snapshot differencing then attributes
    them to the open region exactly as a real PAPI service would.
    """

    def __init__(self, counters: Mapping[str, float] | None = None):
        self._counters: dict[str, float] = dict(counters or {})

    def charge(self, **increments: float) -> None:
        for k, v in increments.items():
            self._counters[k] = self._counters.get(k, 0.0) + v

    def snapshot(self) -> dict[str, float]:
        return dict(self._counters)

    def metadata(self) -> dict[str, Any]:
        return {"counter.service": "synthetic"}


class TopdownService(MetricService):
    """Synthetic Intel top-down counter service.

    Tracks the four pipeline-slot counters from which Yasin's top-level
    top-down metrics derive (see :mod:`repro.topdown.metrics`).  A cost
    model callback translates charged "work" into slot counts.
    """

    SLOTS = (
        "slots_retiring",
        "slots_frontend_bound",
        "slots_backend_bound",
        "slots_bad_speculation",
    )

    def __init__(self, cost_model: Callable[[str, float], dict[str, float]] | None = None):
        self._counters = {slot: 0.0 for slot in self.SLOTS}
        self._cost_model = cost_model

    def charge_slots(self, retiring: float = 0.0, frontend: float = 0.0,
                     backend: float = 0.0, bad_speculation: float = 0.0) -> None:
        self._counters["slots_retiring"] += retiring
        self._counters["slots_frontend_bound"] += frontend
        self._counters["slots_backend_bound"] += backend
        self._counters["slots_bad_speculation"] += bad_speculation

    def charge_work(self, kind: str, amount: float) -> None:
        if self._cost_model is None:
            raise RuntimeError("no cost model configured")
        self.charge_slots(**self._cost_model(kind, amount))

    def snapshot(self) -> dict[str, float]:
        return dict(self._counters)

    def metadata(self) -> dict[str, Any]:
        return {"topdown.service": "synthetic", "topdown.level": "top"}


class LoopService(MetricService):
    """Loop-iteration profiling (Caliper's ``loop`` service).

    The instrumented code reports loop progress via :meth:`iteration`;
    the service accumulates iteration counts so each annotated region's
    row carries how many iterations executed inside it — the "Reps"
    column of the suite profiles.
    """

    metric = "iterations"

    def __init__(self):
        self._count = 0.0

    def iteration(self, n: int = 1) -> None:
        """Record *n* completed loop iterations."""
        if n < 0:
            raise ValueError("iteration count must be non-negative")
        self._count += float(n)

    def snapshot(self) -> dict[str, float]:
        return {self.metric: self._count}

    def metadata(self) -> dict[str, Any]:
        return {"loop.service": "enabled"}


class MemoryHighwaterService(MetricService):
    """Allocation high-water tracking (Caliper's ``alloc`` service).

    The workload reports allocations/frees; the service tracks the peak
    outstanding bytes.  Because a high-water mark is not additive, the
    Instrumenter's snapshot differencing attributes to each region the
    *growth* of the peak while the region was open — exactly how
    Caliper's exclusive aggregation reports it.
    """

    metric = "mem.highwater"

    def __init__(self):
        self._current = 0.0
        self._peak = 0.0

    def allocate(self, nbytes: float) -> None:
        if nbytes < 0:
            raise ValueError("allocation size must be non-negative")
        self._current += float(nbytes)
        self._peak = max(self._peak, self._current)

    def free(self, nbytes: float) -> None:
        if nbytes < 0:
            raise ValueError("free size must be non-negative")
        self._current = max(self._current - float(nbytes), 0.0)

    @property
    def current_bytes(self) -> float:
        return self._current

    def snapshot(self) -> dict[str, float]:
        return {self.metric: self._peak}

    def metadata(self) -> dict[str, Any]:
        return {"alloc.service": "enabled"}
