"""Adiak substitute: structured collection of run metadata.

LLNL's Adiak records name→value facts about a run (user, launch date,
build settings, job size) that Caliper embeds as profile *globals*.
This module provides the same collect-then-freeze workflow.
"""

from __future__ import annotations

import datetime as _dt
import getpass
import platform
from typing import Any, Mapping

__all__ = ["AdiakCollector"]


class AdiakCollector:
    """Accumulates run metadata name/value pairs."""

    def __init__(self, auto: bool = True, clock=None):
        self._values: dict[str, Any] = {}
        # this IS the injectable clock seam: datetime.now is only the
        # default when no clock is supplied
        self._clock = clock or (lambda: _dt.datetime.now())  # repro: noqa[RPR004]
        if auto:
            self.collect_environment()

    def value(self, name: str, value: Any) -> None:
        """Record one fact (last write wins, like adiak_namevalue)."""
        self._values[name] = value

    def update(self, values: Mapping[str, Any]) -> None:
        self._values.update(values)

    def collect_environment(self) -> None:
        """Record the standard implicit facts Adiak gathers."""
        try:
            user = getpass.getuser()
        except (KeyError, OSError):  # pragma: no cover - no passwd entry
            # getpass.getuser raises KeyError when the uid has no passwd
            # entry and OSError when the lookup itself fails
            user = "unknown"
        self._values.setdefault("user", user)
        self._values.setdefault("launchdate",
                                self._clock().strftime("%Y-%m-%d %H:%M:%S"))
        self._values.setdefault("hostname", platform.node())
        self._values.setdefault("platform", platform.machine() or "unknown")

    def freeze(self) -> dict[str, Any]:
        """Immutable snapshot to embed as profile globals."""
        return dict(self._values)

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def __getitem__(self, name: str) -> Any:
        return self._values[name]

    def __len__(self) -> int:
        return len(self._values)
