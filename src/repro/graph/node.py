"""Call-tree nodes.

A :class:`Frame` is the identity of a node — an immutable, ordered
attribute mapping (at minimum ``name``, usually also ``type``).  A
:class:`Node` places a frame in a graph: it stores parent and child
links and a stable numeric id used for deterministic ordering.

Nodes are used directly as row labels in the performance-data table
(the paper's *(call tree node, profile index)* key), so they hash by
identity and sort by ``(name, nid)``.
"""

from __future__ import annotations

from typing import Any, Iterator, Mapping

__all__ = ["Frame", "Node", "node_path"]


class Frame:
    """Immutable attribute set identifying a call-tree node."""

    __slots__ = ("attrs", "_key")

    def __init__(self, attrs: Mapping[str, Any] | None = None, **kwargs: Any):
        merged: dict[str, Any] = dict(attrs or {})
        merged.update(kwargs)
        if "name" not in merged:
            raise ValueError("Frame requires a 'name' attribute")
        merged.setdefault("type", "region")
        self.attrs = merged
        self._key = tuple(sorted(merged.items()))

    @property
    def name(self) -> str:
        return self.attrs["name"]

    def get(self, key: str, default: Any = None) -> Any:
        return self.attrs.get(key, default)

    def __getitem__(self, key: str) -> Any:
        return self.attrs[key]

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Frame) and self._key == other._key

    def __lt__(self, other: "Frame") -> bool:
        return self._key < other._key

    def __hash__(self) -> int:
        return hash(self._key)

    def __repr__(self) -> str:
        return f"Frame({self.attrs!r})"

    def __str__(self) -> str:
        return self.name


class Node:
    """A node in a call graph; identity-hashed, ordered by (name, nid)."""

    __slots__ = ("frame", "parents", "children", "_nid")

    def __init__(self, frame: Frame, nid: int = -1):
        self.frame = frame
        self.parents: list[Node] = []
        self.children: list[Node] = []
        self._nid = nid

    # -- structure -----------------------------------------------------
    def add_child(self, child: "Node") -> None:
        if child not in self.children:
            self.children.append(child)

    def add_parent(self, parent: "Node") -> None:
        if parent not in self.parents:
            self.parents.append(parent)

    def connect(self, child: "Node") -> "Node":
        """Link *child* under self (both directions); returns the child."""
        self.add_child(child)
        child.add_parent(self)
        return child

    @property
    def name(self) -> str:
        return self.frame.name

    def traverse(self, order: str = "pre") -> Iterator["Node"]:
        """Depth-first traversal of the subtree rooted here.

        Visits each node once even when the graph is a DAG (a node with
        several parents appears a single time).
        """
        visited: set[int] = set()

        def _walk(node: "Node") -> Iterator["Node"]:
            if id(node) in visited:
                return
            visited.add(id(node))
            if order == "pre":
                yield node
            for child in node.children:
                yield from _walk(child)
            if order == "post":
                yield node

        yield from _walk(self)

    # -- ordering / hashing ---------------------------------------------
    def __hash__(self) -> int:
        return id(self)

    def __eq__(self, other: object) -> bool:
        return self is other

    def __lt__(self, other: "Node") -> bool:
        return (self.frame.name, self._nid) < (other.frame.name, other._nid)

    def __repr__(self) -> str:
        return f"Node({{'name': {self.frame.name!r}, 'type': {self.frame.get('type')!r}}})"

    def __str__(self) -> str:
        return self.frame.name

    def copy(self) -> "Node":
        """Shallow copy with no parent/child links."""
        return Node(self.frame, nid=self._nid)


def node_path(node: Node) -> tuple[Frame, ...]:
    """Frames from the root down to *node* (first-parent path in a DAG)."""
    parts: list[Frame] = []
    cur: Node | None = node
    seen: set[int] = set()
    while cur is not None and id(cur) not in seen:
        seen.add(id(cur))
        parts.append(cur.frame)
        cur = cur.parents[0] if cur.parents else None
    return tuple(reversed(parts))
