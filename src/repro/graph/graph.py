"""The call graph: a forest of :class:`~repro.graph.node.Node` trees.

Provides traversal, structural equality, and the *union* operation that
Thicket relies on to compose profiles: executions with different build
settings typically produce similar call trees, so the union graph is
the composition basis (§3.2 of the paper).
"""

from __future__ import annotations

from typing import Callable, Iterable, Iterator, Mapping

from .node import Frame, Node, node_path

__all__ = ["Graph"]


class Graph:
    """A rooted forest of call-tree nodes."""

    def __init__(self, roots: Iterable[Node]):
        self.roots = list(roots)
        self.enumerate_traverse()

    # ------------------------------------------------------------------
    @classmethod
    def from_literal(cls, literal: list[Mapping]) -> "Graph":
        """Build a graph from a nested dict description::

            Graph.from_literal([
                {"frame": {"name": "main"}, "children": [
                    {"frame": {"name": "solve"}},
                ]},
            ])
        """

        def build(spec: Mapping, parent: Node | None) -> Node:
            frame = Frame(spec["frame"]) if "frame" in spec else Frame(
                name=spec["name"]
            )
            node = Node(frame)
            if parent is not None:
                parent.connect(node)
            for child_spec in spec.get("children", []):
                build(child_spec, node)
            return node

        return cls([build(spec, None) for spec in literal])

    def to_literal(self) -> list[dict]:
        """Inverse of :meth:`from_literal` (tree view of the graph)."""

        def emit(node: Node) -> dict:
            spec: dict = {"frame": dict(node.frame.attrs)}
            if node.children:
                spec["children"] = [emit(c) for c in node.children]
            return spec

        return [emit(r) for r in self.roots]

    # ------------------------------------------------------------------
    def traverse(self, order: str = "pre") -> Iterator[Node]:
        visited: set[int] = set()
        for root in self.roots:
            for node in root.traverse(order=order):
                if id(node) not in visited:
                    visited.add(id(node))
                    yield node

    def __iter__(self) -> Iterator[Node]:
        return self.traverse()

    def __len__(self) -> int:
        return sum(1 for _ in self.traverse())

    def node_order(self) -> list[Node]:
        return list(self.traverse())

    def enumerate_traverse(self) -> None:
        """Assign stable node ids in pre-order."""
        for i, node in enumerate(self.traverse()):
            node._nid = i

    def find(self, name: str) -> Node | None:
        """First node (pre-order) whose frame name equals *name*."""
        for node in self.traverse():
            if node.frame.name == name:
                return node
        return None

    def find_all(self, predicate: str | Callable[[Node], bool]) -> list[Node]:
        if isinstance(predicate, str):
            wanted = predicate
            predicate = lambda n: n.frame.name == wanted  # noqa: E731
        return [n for n in self.traverse() if predicate(n)]

    # ------------------------------------------------------------------
    def copy(self) -> tuple["Graph", dict[Node, Node]]:
        """Deep copy of the structure; returns (graph, old→new node map)."""
        mapping: dict[Node, Node] = {}

        def clone(node: Node) -> Node:
            if node in mapping:
                return mapping[node]
            new = node.copy()
            mapping[node] = new
            for child in node.children:
                new.connect(clone(child))
            return new

        return Graph([clone(r) for r in self.roots]), mapping

    # ------------------------------------------------------------------
    # structural identity
    # ------------------------------------------------------------------
    def path_map(self) -> dict[tuple[Frame, ...], Node]:
        """Map root-path → node.  Paths are unique within one profile's tree."""
        return {node_path(n): n for n in self.traverse()}

    def __eq__(self, other: object) -> bool:
        """Structural equality: same shape with equal frames."""
        if not isinstance(other, Graph):
            return NotImplemented
        from .canon import canonical_form

        return canonical_form(self) == canonical_form(other)

    def __hash__(self):
        raise TypeError("Graph objects are not hashable")

    def union(self, other: "Graph") -> tuple["Graph", dict[Node, Node], dict[Node, Node]]:
        """Merge two graphs on structural identity of call paths.

        Returns ``(union_graph, map_self, map_other)`` where the maps
        send nodes of the input graphs to nodes of the union graph.
        This realizes the paper's call-tree matching step: nodes whose
        path of frames from the root coincides are identified.
        """
        from .union import union_graphs

        return union_graphs(self, other)
