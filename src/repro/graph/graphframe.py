"""GraphFrame: one profile = a call graph + per-node metric rows + metadata.

This is the Hatchet-equivalent single-profile container that Thicket
readers produce and the Thicket constructor consumes.  The dataframe is
indexed by :class:`~repro.graph.node.Node` and holds one row per node;
``metadata`` carries the run's build settings and execution context
(the Adiak globals in a Caliper profile).
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Sequence

import numpy as np

from ..frame import DataFrame, Index
from .graph import Graph
from .node import Node

__all__ = ["GraphFrame"]


class GraphFrame:
    """A single performance profile over a call graph.

    Parameters
    ----------
    graph:
        The call graph.
    dataframe:
        Frame indexed by node (index name ``"node"``), one row per node.
    metadata:
        Per-run key→value metadata.
    exc_metrics / inc_metrics:
        Which columns are exclusive vs inclusive metrics.
    default_metric:
        Metric used by ``tree()`` when none is given.
    """

    def __init__(self, graph: Graph, dataframe: DataFrame,
                 metadata: Mapping[str, Any] | None = None,
                 exc_metrics: Sequence[str] | None = None,
                 inc_metrics: Sequence[str] | None = None,
                 default_metric: str | None = None):
        self.graph = graph
        self.dataframe = dataframe
        self.metadata = dict(metadata or {})
        self.exc_metrics = list(exc_metrics or [])
        self.inc_metrics = list(inc_metrics or [])
        self.default_metric = default_metric or (
            self.exc_metrics[0] if self.exc_metrics
            else (self.inc_metrics[0] if self.inc_metrics
                  else (dataframe.columns[0] if dataframe.columns else None))
        )

    # ------------------------------------------------------------------
    @classmethod
    def from_literal(cls, literal: list[Mapping]) -> "GraphFrame":
        """Build a profile from a nested dict spec with ``metrics`` blocks."""
        graph = Graph.from_literal(literal)

        # walk the literal and graph in the same order to collect metrics
        rows: list[tuple[Node, dict]] = []

        def collect(spec: Mapping, node: Node) -> None:
            rows.append((node, dict(spec.get("metrics", {}))))
            for child_spec, child in zip(spec.get("children", []), node.children):
                collect(child_spec, child)

        for spec, root in zip(literal, graph.roots):
            collect(spec, root)

        nodes = [n for n, _ in rows]
        keys: dict[str, None] = {}
        for _, metrics in rows:
            for k in metrics:
                keys.setdefault(k, None)
        data = {
            k: [metrics.get(k, np.nan) for _, metrics in rows] for k in keys
        }
        data["name"] = [n.frame.name for n in nodes]
        df = DataFrame(data, index=Index(nodes, name="node"))
        exc = [k for k in keys if "(inc)" not in k]
        inc = [k for k in keys if "(inc)" in k]
        return cls(graph, df, exc_metrics=exc, inc_metrics=inc)

    # ------------------------------------------------------------------
    def copy(self) -> "GraphFrame":
        """Deep-copies structure and data; graph nodes are re-created."""
        new_graph, mapping = self.graph.copy()
        df = self.dataframe.copy()
        df.index = Index(
            [mapping[n] for n in df.index.values], name=df.index.name
        )
        return GraphFrame(new_graph, df, metadata=dict(self.metadata),
                          exc_metrics=list(self.exc_metrics),
                          inc_metrics=list(self.inc_metrics),
                          default_metric=self.default_metric)

    def shallow_copy(self) -> "GraphFrame":
        """Same graph object, copied dataframe/metadata."""
        return GraphFrame(self.graph, self.dataframe.copy(),
                          metadata=dict(self.metadata),
                          exc_metrics=list(self.exc_metrics),
                          inc_metrics=list(self.inc_metrics),
                          default_metric=self.default_metric)

    def __len__(self) -> int:
        return len(self.dataframe)

    # ------------------------------------------------------------------
    # derived metrics
    # ------------------------------------------------------------------
    def calculate_inclusive_metrics(self) -> None:
        """Sum each exclusive metric over subtrees → ``"<metric> (inc)"``.

        Post-order accumulation; DAG nodes are counted once per parent
        path (standard Hatchet semantics for trees, which is what our
        profiles produce).
        """
        nodes = self.graph.node_order()
        pos = {n: i for i, n in enumerate(self.dataframe.index.values)}
        for metric in list(self.exc_metrics):
            exc = self.dataframe.column(metric).astype(np.float64)
            inc = exc.copy()
            for node in reversed(nodes):  # children before parents in pre-order reversal
                for child in node.children:
                    inc[pos[node]] += inc[pos[child]]
            name = f"{metric} (inc)"
            self.dataframe[name] = inc
            if name not in self.inc_metrics:
                self.inc_metrics.append(name)

    def calculate_exclusive_metrics(self) -> None:
        """Inverse of :meth:`calculate_inclusive_metrics`."""
        pos = {n: i for i, n in enumerate(self.dataframe.index.values)}
        for metric in list(self.inc_metrics):
            if not metric.endswith(" (inc)"):
                continue
            base = metric[: -len(" (inc)")]
            if base in self.dataframe:
                continue
            inc = self.dataframe.column(metric).astype(np.float64)
            exc = inc.copy()
            for node in self.graph.traverse():
                for child in node.children:
                    exc[pos[node]] -= inc[pos[child]]
            self.dataframe[base] = exc
            if base not in self.exc_metrics:
                self.exc_metrics.append(base)

    # ------------------------------------------------------------------
    # filtering / squashing
    # ------------------------------------------------------------------
    def filter(self, predicate: Callable[[dict], bool], squash: bool = True
               ) -> "GraphFrame":
        """Keep rows whose row-dict satisfies *predicate*.

        With ``squash=True`` the graph is rebuilt so that children of
        removed nodes are re-parented to their nearest kept ancestor.
        """
        keep_mask = np.fromiter(
            (bool(predicate(row)) for _, row in self.dataframe.iterrows()),
            dtype=bool, count=len(self.dataframe),
        )
        kept_nodes = {n for n, m in zip(self.dataframe.index.values, keep_mask) if m}
        if not squash:
            out = self.shallow_copy()
            out.dataframe = out.dataframe[keep_mask]
            return out
        return self.squash(kept_nodes, keep_mask)

    def squash(self, kept_nodes: set[Node], keep_mask: np.ndarray) -> "GraphFrame":
        """Rebuild the graph over *kept_nodes*, re-parenting across gaps."""
        mapping: dict[Node, Node] = {}
        new_roots: list[Node] = []

        def rebuild(node: Node, nearest_kept: Node | None) -> None:
            new_parent = nearest_kept
            if node in kept_nodes:
                clone = mapping.get(node)
                if clone is None:
                    clone = node.copy()
                    mapping[node] = clone
                    if nearest_kept is None:
                        new_roots.append(clone)
                    else:
                        nearest_kept.connect(clone)
                new_parent = clone
            for child in node.children:
                rebuild(child, new_parent)

        for root in self.graph.roots:
            rebuild(root, None)

        new_graph = Graph(new_roots)
        df = self.dataframe[keep_mask]
        df.index = Index(
            [mapping[n] for n in df.index.values], name=df.index.name
        )
        return GraphFrame(new_graph, df, metadata=dict(self.metadata),
                          exc_metrics=list(self.exc_metrics),
                          inc_metrics=list(self.inc_metrics),
                          default_metric=self.default_metric)

    # ------------------------------------------------------------------
    def tree(self, metric_column: str | None = None, precision: int = 3,
             color: bool = False) -> str:
        """ASCII rendering of the call tree annotated with a metric."""
        from ..viz.tree import render_tree

        return render_tree(self.graph, self.dataframe,
                           metric_column or self.default_metric,
                           precision=precision, color=color)

    def __repr__(self) -> str:
        return (f"GraphFrame(nodes={len(self.graph)}, "
                f"metrics={self.exc_metrics + self.inc_metrics!r})")
