"""GraphFrame arithmetic: subtract or divide two profiles node-by-node.

Hatchet's classic use cases ("computing the speedup of a single core to
many cores") are binary operations over two profiles: match nodes on
call path, then combine their metric columns.  Nodes present in only
one input keep their value for ``sub`` (the other side counts as 0) and
yield NaN for ``div``.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from ..frame import DataFrame, Index
from .graphframe import GraphFrame
from .union import union_graphs

__all__ = ["combine_graphframes", "subtract", "divide"]


def combine_graphframes(a: GraphFrame, b: GraphFrame,
                        op: Callable[[np.ndarray, np.ndarray], np.ndarray],
                        metrics: Sequence[str] | None = None,
                        missing: float = np.nan) -> GraphFrame:
    """Generic binary combination over the union of two call trees.

    Parameters
    ----------
    op:
        Vectorized binary operation applied per metric column.
    metrics:
        Columns to combine (default: numeric columns common to both).
    missing:
        Value standing in for a node one side did not measure.
    """
    union, map_a, map_b = union_graphs(a.graph, b.graph)
    nodes = union.node_order()
    pos = {n: i for i, n in enumerate(nodes)}

    if metrics is None:
        metrics = [
            c for c in a.dataframe.columns
            if c in b.dataframe
            and a.dataframe.column(c).dtype.kind in "if"
            and b.dataframe.column(c).dtype.kind in "if"
        ]
    if not metrics:
        raise ValueError("no shared numeric metric columns to combine")

    def lift(gf: GraphFrame, mapping, column: str) -> np.ndarray:
        out = np.full(len(nodes), missing, dtype=np.float64)
        col = gf.dataframe.column(column)
        for node, v in zip(gf.dataframe.index.values, col):
            out[pos[mapping[node]]] = float(v)
        return out

    data: dict = {"name": [n.frame.name for n in nodes]}
    with np.errstate(invalid="ignore", divide="ignore"):
        for metric in metrics:
            data[metric] = op(lift(a, map_a, metric), lift(b, map_b, metric))

    df = DataFrame(data, index=Index(nodes, name="node"))
    return GraphFrame(union, df,
                      metadata={"operands": (dict(a.metadata),
                                             dict(b.metadata))},
                      exc_metrics=[m for m in metrics
                                   if m in a.exc_metrics],
                      inc_metrics=[m for m in metrics
                                   if m in a.inc_metrics],
                      default_metric=a.default_metric
                      if a.default_metric in metrics else None)


def subtract(a: GraphFrame, b: GraphFrame,
             metrics: Sequence[str] | None = None) -> GraphFrame:
    """Per-node difference ``a - b`` (missing nodes count as 0)."""
    return combine_graphframes(a, b, lambda x, y: np.nan_to_num(x)
                               - np.nan_to_num(y), metrics=metrics)


def divide(a: GraphFrame, b: GraphFrame,
           metrics: Sequence[str] | None = None) -> GraphFrame:
    """Per-node ratio ``a / b`` (e.g. speedup); missing nodes give NaN."""
    return combine_graphframes(a, b, lambda x, y: x / y, metrics=metrics)
