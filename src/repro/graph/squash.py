"""Non-destructive graph squashing.

Given a set of nodes to keep, build a **new** forest of fresh node
objects where children of dropped nodes are re-parented to their
nearest kept ancestor.  The old→new mapping lets callers re-key
dataframes indexed by the old nodes.  Used by Thicket's intersection
composition and by call-path querying.
"""

from __future__ import annotations

from .graph import Graph
from .node import Node

__all__ = ["squash_graph"]


def squash_graph(graph: Graph, keep: set[Node]) -> tuple[Graph, dict[Node, Node]]:
    """Return ``(new_graph, old_node -> new_node)`` restricted to *keep*."""
    mapping: dict[Node, Node] = {}
    new_roots: list[Node] = []

    def clone_of(node: Node) -> Node:
        clone = mapping.get(node)
        if clone is None:
            clone = node.copy()
            mapping[node] = clone
        return clone

    def rebuild(node: Node, nearest_kept: Node | None) -> None:
        nxt = nearest_kept
        if node in keep:
            clone = clone_of(node)
            if nearest_kept is None:
                if clone not in new_roots:
                    new_roots.append(clone)
            else:
                parent_clone = nearest_kept
                if clone not in parent_clone.children:
                    parent_clone.connect(clone)
            nxt = clone
        for child in node.children:
            rebuild(child, nxt)

    for root in graph.roots:
        rebuild(root, None)
    return Graph(new_roots), mapping
