"""``repro.graph`` — labelled call-tree substrate (Hatchet substitute)."""

from .arithmetic import combine_graphframes, divide, subtract
from .canon import canonical_form, canonical_hash, trees_isomorphic
from .graph import Graph
from .graphframe import GraphFrame
from .node import Frame, Node, node_path
from .union import union_graphs, union_many

__all__ = [
    "Frame",
    "Node",
    "node_path",
    "Graph",
    "GraphFrame",
    "union_graphs",
    "union_many",
    "canonical_form",
    "canonical_hash",
    "trees_isomorphic",
    "combine_graphframes",
    "subtract",
    "divide",
]
