"""Canonical forms for labelled call trees (the isomorphism test).

The paper notes Thicket "solves the graph isomorphism problem" to
intersect the call trees of an ensemble.  For rooted *labelled* trees,
isomorphism is decidable in linear time via canonical forms
(Aho-Hopcroft-Ullman): recursively canonize children, sort, and wrap
with the node's own label.  Two trees are isomorphic (with matching
labels) iff their canonical forms are equal.

This module is also used by the ablation benchmark comparing
canonical-form matching against naive recursive merging.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .node import Node

if TYPE_CHECKING:  # pragma: no cover
    from .graph import Graph

__all__ = ["canonical_form", "trees_isomorphic", "canonical_hash"]


def _canon(node: Node, visited: set[int]) -> tuple:
    """Canonical tuple for the subtree rooted at *node*."""
    if id(node) in visited:
        # DAG back-reference: encode as a leaf marker so forms stay finite
        return (node.frame._key, "<shared>")
    visited = visited | {id(node)}
    child_forms = sorted(_canon(c, visited) for c in node.children)
    return (node.frame._key, tuple(child_forms))


def canonical_form(graph: "Graph") -> tuple:
    """Order-independent canonical form of a whole forest."""
    return tuple(sorted(_canon(root, set()) for root in graph.roots))


def canonical_hash(graph: "Graph") -> int:
    """Hash of the canonical form (fast pre-check for equality)."""
    return hash(canonical_form(graph))


def trees_isomorphic(a: "Graph", b: "Graph") -> bool:
    """Label-preserving isomorphism test for two forests."""
    return canonical_form(a) == canonical_form(b)
