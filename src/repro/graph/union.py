"""Graph union on structural identity.

Two nodes are identified when their *call paths* — the sequence of
frames from a root — are equal.  For labelled call trees this is
exactly the intersection/union of the trees the paper computes via
labelled-graph isomorphism: paths are canonical names for nodes, so
matching paths ⇔ an isomorphism of the shared subtree that preserves
labels.  The union graph contains one node per distinct path across
both inputs.
"""

from __future__ import annotations

from ..obs import span as obs_span
from .graph import Graph
from .node import Frame, Node

__all__ = ["union_graphs", "union_many"]


def union_graphs(a: Graph, b: Graph) -> tuple[Graph, dict[Node, Node], dict[Node, Node]]:
    """Union of two graphs; see :meth:`repro.graph.graph.Graph.union`."""
    union, maps = union_many([a, b])
    return union, maps[0], maps[1]


def union_many(graphs: list[Graph]) -> tuple[Graph, list[dict[Node, Node]]]:
    """Union of any number of graphs in one pass.

    Returns the union graph plus, per input graph, a mapping from its
    nodes to union nodes.  Children keep first-seen order so the union
    of identical graphs reproduces the input ordering.
    """
    path_to_node: dict[tuple[Frame, ...], Node] = {}
    roots: list[Node] = []
    maps: list[dict[Node, Node]] = []

    with obs_span("graph.union", graphs=len(graphs)) as s:
        for graph in graphs:
            mapping: dict[Node, Node] = {}

            def visit(node: Node, parent_union: Node | None,
                      path: tuple[Frame, ...]) -> None:
                path = path + (node.frame,)
                union_node = path_to_node.get(path)
                if union_node is None:
                    union_node = Node(node.frame)
                    path_to_node[path] = union_node
                    if parent_union is None:
                        roots.append(union_node)
                    else:
                        parent_union.connect(union_node)
                mapping[node] = union_node
                for child in node.children:
                    visit(child, union_node, path)

            for root in graph.roots:
                visit(root, None, ())
            maps.append(mapping)

        union = Graph(roots)
        s.set("union_nodes", len(path_to_node))
    return union, maps
