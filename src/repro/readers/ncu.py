"""Reader for Nsight-Compute-style per-kernel metric reports.

NCU exports per-kernel CSV tables (one row per kernel × metric).  The
synthetic NCU generator (:mod:`repro.workloads.ncu`) writes the same
shape; this reader pivots it to a DataFrame with one row per kernel and
one column per metric, keyed by kernel (= call-tree node) name, ready
to be attached to a Thicket via ``Thicket.add_ncu``.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path

from ..errors import SchemaError
from ..frame import DataFrame, Index

__all__ = ["read_ncu_csv"]


def read_ncu_csv(path: str | Path) -> DataFrame:
    """Parse an NCU CSV report (``kernel,metric,value`` rows)."""
    text = Path(path).read_text()
    rows = list(csv.reader(io.StringIO(text)))
    if not rows:
        return DataFrame()
    header = rows[0]
    try:
        k_col = header.index("kernel")
        m_col = header.index("metric")
        v_col = header.index("value")
    except ValueError as exc:
        raise SchemaError(
            f"NCU report must have kernel/metric/value columns, got {header}",
            source=path) from exc

    kernels: dict[str, dict[str, float]] = {}
    metrics: dict[str, None] = {}
    for row in rows[1:]:
        if not row:
            continue
        kernel, metric, value = row[k_col], row[m_col], float(row[v_col])
        kernels.setdefault(kernel, {})[metric] = value
        metrics.setdefault(metric, None)

    names = list(kernels)
    data = {
        m: [kernels[k].get(m, float("nan")) for k in names] for m in metrics
    }
    return DataFrame(data, index=Index(names, name="kernel"))
