"""``repro.readers`` — profile readers (Caliper JSON, literal, NCU)."""

from .caliper import read_cali_dict, read_cali_json
from .literal import read_literal
from .ncu import read_ncu_csv

__all__ = ["read_cali_json", "read_cali_dict", "read_literal", "read_ncu_csv"]
