"""Reader for cali-JSON ("json-split") profiles → GraphFrame.

The inverse of :mod:`repro.caliper.writer`: rebuilds the call tree from
the node/parent table, attaches per-node metric rows, and carries the
profile globals as GraphFrame metadata.  This is the single-profile
loading path Thicket builds on (the paper: "Thicket uses Hatchet's
readers for loading in a single profile at a time").
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from ..frame import DataFrame, Index
from ..graph import Frame, Graph, GraphFrame, Node

__all__ = ["read_cali_json", "read_cali_dict"]


def read_cali_dict(payload: Mapping[str, Any]) -> GraphFrame:
    """Build a GraphFrame from a json-split dict."""
    node_specs = payload["nodes"]
    columns = payload["columns"]
    data = payload["data"]
    col_meta = payload.get("column_metadata") or [{} for _ in columns]

    # rebuild the tree
    nodes: list[Node] = []
    roots: list[Node] = []
    for spec in node_specs:
        node = Node(Frame(name=spec["label"], type=spec.get("column", "path")))
        parent_id = spec.get("parent")
        if parent_id is None:
            roots.append(node)
        else:
            nodes[parent_id].connect(node)
        nodes.append(node)
    graph = Graph(roots)

    # locate the structural column (node-id) vs value columns
    try:
        path_pos = columns.index("path")
    except ValueError:
        path_pos = 0
    value_cols = [
        (j, c) for j, c in enumerate(columns)
        if j != path_pos and col_meta[j].get("is_value", True)
    ]

    row_nodes: list[Node] = []
    col_values: dict[str, list] = {c: [] for _, c in value_cols}
    for row in data:
        row_nodes.append(nodes[row[path_pos]])
        for j, c in value_cols:
            v = row[j]
            col_values[c].append(np.nan if v is None else v)

    frame_data: dict[Any, Any] = {"name": [n.frame.name for n in row_nodes]}
    frame_data.update(col_values)
    df = DataFrame(frame_data, index=Index(row_nodes, name="node"))

    exc = [c for c in col_values if "(inc)" not in c]
    inc = [c for c in col_values if "(inc)" in c]
    default = "time (exc)" if "time (exc)" in col_values else None
    return GraphFrame(graph, df, metadata=dict(payload.get("globals", {})),
                      exc_metrics=exc, inc_metrics=inc, default_metric=default)


def read_cali_json(path: str | Path) -> GraphFrame:
    """Read one ``*.json`` profile file from disk."""
    payload = json.loads(Path(path).read_text())
    gf = read_cali_dict(payload)
    gf.metadata.setdefault("profile.file", str(path))
    return gf
