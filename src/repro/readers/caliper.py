"""Reader for cali-JSON ("json-split") profiles → GraphFrame.

The inverse of :mod:`repro.caliper.writer`: rebuilds the call tree from
the node/parent table, attaches per-node metric rows, and carries the
profile globals as GraphFrame metadata.  This is the single-profile
loading path Thicket builds on (the paper: "Thicket uses Hatchet's
readers for loading in a single profile at a time").

Malformed payloads never escape as raw ``KeyError``/``IndexError``:
structural problems raise :class:`repro.errors.SchemaError` naming the
missing/broken section and the source file, and undecodable JSON raises
:class:`repro.errors.ReaderError` chained onto the original
``json.JSONDecodeError`` so the file path is part of the traceback.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Mapping

import numpy as np

from ..errors import ReaderError, SchemaError
from ..frame import DataFrame, Index
from ..graph import Frame, Graph, GraphFrame, Node

__all__ = ["read_cali_json", "read_cali_dict"]

_REQUIRED_SECTIONS = ("nodes", "columns", "data")


def read_cali_dict(payload: Mapping[str, Any],
                   source: Any = None) -> GraphFrame:
    """Build a GraphFrame from a json-split dict.

    ``source`` (a file path, when known) is attached to any
    :class:`SchemaError` raised for a structurally invalid payload.
    """
    if not isinstance(payload, Mapping):
        raise SchemaError(
            f"cali-JSON payload must be an object, got {type(payload).__name__}",
            source=source)
    missing = [s for s in _REQUIRED_SECTIONS if s not in payload]
    if missing:
        raise SchemaError(
            f"cali-JSON payload missing required section(s) "
            f"{', '.join(repr(s) for s in missing)}", source=source)
    node_specs = payload["nodes"]
    columns = payload["columns"]
    data = payload["data"]
    for section, value in (("nodes", node_specs), ("columns", columns),
                           ("data", data)):
        if not isinstance(value, (list, tuple)):
            raise SchemaError(
                f"cali-JSON section {section!r} must be a list, got "
                f"{type(value).__name__}", source=source)
    col_meta = payload.get("column_metadata") or [{} for _ in columns]
    if len(col_meta) < len(columns):
        col_meta = list(col_meta) + [{} for _ in range(len(columns) - len(col_meta))]

    # rebuild the tree
    nodes: list[Node] = []
    roots: list[Node] = []
    for i, spec in enumerate(node_specs):
        if not isinstance(spec, Mapping) or "label" not in spec:
            raise SchemaError(
                f"node entry {i} is not an object with a 'label'",
                source=source)
        node = Node(Frame(name=spec["label"], type=spec.get("column", "path")))
        parent_id = spec.get("parent")
        if parent_id is None:
            roots.append(node)
        else:
            if not isinstance(parent_id, int) or not 0 <= parent_id < i:
                raise SchemaError(
                    f"node entry {i} has dangling parent reference "
                    f"{parent_id!r} (must be an already-defined node id "
                    f"< {i})", source=source)
            nodes[parent_id].connect(node)
        nodes.append(node)
    graph = Graph(roots)

    # locate the structural column (node-id) vs value columns
    try:
        path_pos = columns.index("path")
    except ValueError:
        path_pos = 0
    value_cols = [
        (j, c) for j, c in enumerate(columns)
        if j != path_pos and (not isinstance(col_meta[j], Mapping)
                              or col_meta[j].get("is_value", True))
    ]

    row_nodes: list[Node] = []
    col_values: dict[str, list] = {c: [] for _, c in value_cols}
    for r, row in enumerate(data):
        if not isinstance(row, (list, tuple)) or len(row) != len(columns):
            raise SchemaError(
                f"data row {r} does not match the {len(columns)}-column "
                f"layout", source=source)
        nid = row[path_pos]
        if not isinstance(nid, int) or not 0 <= nid < len(nodes):
            raise SchemaError(
                f"data row {r} references unknown node id {nid!r} "
                f"(profile has {len(nodes)} nodes)", source=source)
        row_nodes.append(nodes[nid])
        for j, c in value_cols:
            v = row[j]
            col_values[c].append(np.nan if v is None else v)

    frame_data: dict[Any, Any] = {"name": [n.frame.name for n in row_nodes]}
    frame_data.update(col_values)
    df = DataFrame(frame_data, index=Index(row_nodes, name="node"))

    exc = [c for c in col_values if "(inc)" not in c]
    inc = [c for c in col_values if "(inc)" in c]
    default = "time (exc)" if "time (exc)" in col_values else None
    return GraphFrame(graph, df, metadata=dict(payload.get("globals", {})),
                      exc_metrics=exc, inc_metrics=inc, default_metric=default)


def read_cali_json(path: str | Path) -> GraphFrame:
    """Read one ``*.json`` profile file from disk."""
    text = Path(path).read_text()
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as e:
        raise ReaderError(
            f"invalid JSON in {path}: {e}", source=path) from e
    gf = read_cali_dict(payload, source=path)
    gf.metadata.setdefault("profile.file", str(path))
    return gf
