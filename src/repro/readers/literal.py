"""Literal (nested-dict) reader — handy for tests and small examples."""

from __future__ import annotations

from typing import Any, Mapping

from ..graph import GraphFrame

__all__ = ["read_literal"]


def read_literal(literal: list[Mapping], metadata: Mapping[str, Any] | None = None
                 ) -> GraphFrame:
    """Build a GraphFrame from the nested-dict format of
    :meth:`repro.graph.GraphFrame.from_literal`, with optional metadata."""
    gf = GraphFrame.from_literal(list(literal))
    if metadata:
        gf.metadata.update(metadata)
    return gf
