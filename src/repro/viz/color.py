"""Colormaps and categorical palettes for the visualizations."""

from __future__ import annotations

__all__ = ["sequential", "diverging", "CATEGORICAL", "TOPDOWN_COLORS", "hex_color"]

# Paul Tol's bright palette — colourblind-safe categorical colours.
CATEGORICAL = [
    "#4477AA", "#EE6677", "#228833", "#CCBB44",
    "#66CCEE", "#AA3377", "#BBBBBB", "#000000",
]

# Fixed colours for the four top-down categories (Fig. 14 legend order).
TOPDOWN_COLORS = {
    "Retiring": "#228833",
    "Frontend bound": "#CCBB44",
    "Backend bound": "#4477AA",
    "Bad speculation": "#EE6677",
}


def hex_color(r: float, g: float, b: float) -> str:
    clip = lambda v: max(0, min(255, int(round(v * 255))))  # noqa: E731
    return f"#{clip(r):02x}{clip(g):02x}{clip(b):02x}"


def sequential(frac: float) -> str:
    """Light-yellow → dark-blue sequential ramp (heatmaps)."""
    frac = max(0.0, min(1.0, frac))
    # interpolate between (1.0, 0.97, 0.75) and (0.10, 0.15, 0.40)
    r = 1.0 + (0.10 - 1.0) * frac
    g = 0.97 + (0.15 - 0.97) * frac
    b = 0.75 + (0.40 - 0.75) * frac
    return hex_color(r, g, b)


def diverging(frac: float) -> str:
    """Blue → white → red diverging ramp centred at 0.5."""
    frac = max(0.0, min(1.0, frac))
    if frac < 0.5:
        t = frac / 0.5
        return hex_color(0.2 + 0.8 * t, 0.3 + 0.7 * t, 0.75 + 0.25 * t)
    t = (frac - 0.5) / 0.5
    return hex_color(1.0, 1.0 - 0.7 * t, 1.0 - 0.8 * t)
