"""Per-node box plots of ensemble metric distributions.

Complements the Fig. 12 histogram insets: one Tukey box per call-tree
node showing the spread of a metric across the ensemble's profiles,
with whisker fences from :func:`repro.core.stats.boxplot_stats` and
fliers drawn individually.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from .color import CATEGORICAL
from .svg import SVGCanvas

__all__ = ["boxplot_svg", "boxplot_text"]


def _node_values(tk, node_name: str, column: Hashable) -> np.ndarray:
    from .histogram import node_metric_values

    return node_metric_values(tk, node_name, column)


def _components(values: np.ndarray, whisker: float = 1.5) -> dict:
    q1, med, q3 = np.percentile(values, [25, 50, 75])
    iqr = q3 - q1
    lo_fence = q1 - whisker * iqr
    hi_fence = q3 + whisker * iqr
    inside = values[(values >= lo_fence) & (values <= hi_fence)]
    return {
        "q1": float(q1), "median": float(med), "q3": float(q3),
        "lo": float(inside.min()) if len(inside) else float(q1),
        "hi": float(inside.max()) if len(inside) else float(q3),
        "fliers": [float(v) for v in values
                   if v < lo_fence or v > hi_fence],
    }


def boxplot_text(tk, node_names: Sequence[str], column: Hashable,
                 width: int = 50) -> str:
    """ASCII box plots, one row per node, on a shared axis."""
    comps = {}
    all_vals: list[float] = []
    for name in node_names:
        values = _node_values(tk, name, column)
        if len(values) == 0:
            continue
        comps[name] = _components(values)
        all_vals.extend(values)
    if not comps:
        return "(no data)"
    lo = min(all_vals)
    hi = max(all_vals)
    span = (hi - lo) or 1.0

    def col_of(v: float) -> int:
        return int((v - lo) / span * (width - 1))

    name_w = max(len(n) for n in comps)
    lines = [f"{'':>{name_w}}  [{lo:.4g} .. {hi:.4g}]  {column}"]
    for name, c in comps.items():
        row = [" "] * width
        for x in range(col_of(c["lo"]), col_of(c["hi"]) + 1):
            row[x] = "-"
        for x in range(col_of(c["q1"]), col_of(c["q3"]) + 1):
            row[x] = "▒"
        row[col_of(c["median"])] = "█"
        for v in c["fliers"]:
            row[col_of(v)] = "o"
        lines.append(f"{name:>{name_w}}  |{''.join(row)}|")
    return "\n".join(lines)


def boxplot_svg(tk, node_names: Sequence[str], column: Hashable,
                width: int = 520, row_h: int = 34,
                title: str = "") -> SVGCanvas:
    """SVG box plots on a shared horizontal axis."""
    comps = {}
    all_vals: list[float] = []
    for name in node_names:
        values = _node_values(tk, name, column)
        if len(values):
            comps[name] = _components(values)
            all_vals.extend(values)
    label_w, right, top = 200, 20, 44
    height = top + row_h * max(len(comps), 1) + 30
    svg = SVGCanvas(width, height)
    if title:
        svg.text(10, 20, title, size=13)
    if not comps:
        return svg
    lo, hi = min(all_vals), max(all_vals)
    pad = (hi - lo) * 0.05 or 1.0
    lo, hi = lo - pad, hi + pad

    def sx(v: float) -> float:
        return label_w + (v - lo) / (hi - lo) * (width - label_w - right)

    axis_y = top - 10
    svg.line(label_w, axis_y, width - right, axis_y, stroke="#888888")
    svg.text(label_w, axis_y - 4, f"{lo:.4g}", size=9)
    svg.text(width - right, axis_y - 4, f"{hi:.4g}", size=9, anchor="end")

    for i, (name, c) in enumerate(comps.items()):
        y = top + i * row_h + row_h / 2
        color = CATEGORICAL[i % len(CATEGORICAL)]
        svg.text(label_w - 8, y + 4, name, size=10, anchor="end")
        svg.line(sx(c["lo"]), y, sx(c["hi"]), y, stroke="#555555")
        svg.line(sx(c["lo"]), y - 6, sx(c["lo"]), y + 6, stroke="#555555")
        svg.line(sx(c["hi"]), y - 6, sx(c["hi"]), y + 6, stroke="#555555")
        svg.rect(sx(c["q1"]), y - 9, max(sx(c["q3"]) - sx(c["q1"]), 1.0), 18,
                 fill=color, opacity=0.55,
                 title=(f"{name}: q1={c['q1']:.4g} med={c['median']:.4g} "
                        f"q3={c['q3']:.4g}"))
        svg.line(sx(c["median"]), y - 9, sx(c["median"]), y + 9,
                 stroke="#111111", width=1.6)
        for v in c["fliers"]:
            svg.circle(sx(v), y, 2.5, fill="#EE6677",
                       title=f"{name} outlier: {v:.6g}")
    return svg
