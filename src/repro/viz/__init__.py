"""``repro.viz`` — terminal and SVG visualizations of thicket data."""

from .boxplot import boxplot_svg, boxplot_text
from .color import CATEGORICAL, TOPDOWN_COLORS, diverging, sequential
from .export import export_json, pcp_payload, tree_table_payload
from .heatmap import find_outlier_cells, heatmap_svg, heatmap_text
from .histogram import (
    histogram_counts,
    histogram_svg,
    histogram_text,
    node_metric_values,
)
from .line import line_plot_svg, scaling_plot_svg
from .parallel_coords import (
    axis_values,
    crossing_fraction,
    parallel_coordinates_svg,
)
from .scatter import axis_ticks, scatter_svg
from .stacked_bar import topdown_svg, topdown_table, topdown_text
from .svg import SVGCanvas
from .table import table_svg
from .tree import render_tree

__all__ = [
    "render_tree",
    "SVGCanvas",
    "boxplot_svg",
    "boxplot_text",
    "sequential",
    "diverging",
    "CATEGORICAL",
    "TOPDOWN_COLORS",
    "heatmap_svg",
    "heatmap_text",
    "find_outlier_cells",
    "histogram_counts",
    "histogram_svg",
    "histogram_text",
    "node_metric_values",
    "scatter_svg",
    "axis_ticks",
    "parallel_coordinates_svg",
    "crossing_fraction",
    "axis_values",
    "line_plot_svg",
    "scaling_plot_svg",
    "topdown_svg",
    "topdown_table",
    "topdown_text",
    "tree_table_payload",
    "pcp_payload",
    "export_json",
    "table_svg",
]
