"""ASCII call-tree rendering (the ``tree()`` views in Figs. 8 of the paper).

Each node prints as ``<metric value> <name>`` with box-drawing
connectors.  An optional ANSI colour ramp encodes the metric magnitude
(green → red), matching Hatchet's terminal output.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from ..frame import DataFrame

__all__ = ["render_tree"]

_ANSI_RESET = "\033[0m"
# green, cyan, yellow, magenta, red — low to high
_ANSI_RAMP = ["\033[32m", "\033[36m", "\033[33m", "\033[35m", "\033[31m"]


def _colorize(text: str, frac: float) -> str:
    idx = min(int(frac * len(_ANSI_RAMP)), len(_ANSI_RAMP) - 1)
    return f"{_ANSI_RAMP[idx]}{text}{_ANSI_RESET}"


def render_tree(graph, dataframe: DataFrame, metric: str | None,
                precision: int = 3, color: bool = False,
                name_column: str = "name") -> str:
    """Render *graph* with per-node values from *dataframe[metric]*."""
    values: dict[Any, float] = {}
    if metric is not None and metric in dataframe:
        col = dataframe.column(metric)
        for node, v in zip(dataframe.index.values, col):
            key = node[0] if isinstance(node, tuple) else node
            try:
                values[key] = float(v)
            except (TypeError, ValueError):
                values[key] = float("nan")
    finite = [v for v in values.values() if np.isfinite(v)]
    vmin = min(finite) if finite else 0.0
    vmax = max(finite) if finite else 1.0
    span = (vmax - vmin) or 1.0

    lines: list[str] = []

    def label(node) -> str:
        v = values.get(node)
        if v is None or not np.isfinite(v):
            txt = " " * (precision + 2)
        else:
            txt = f"{v:.{precision}f}"
            if color:
                txt = _colorize(txt, (v - vmin) / span)
        return f"{txt} {node.frame.name}"

    def walk(node, prefix: str, is_last: bool, is_root: bool,
             visited: set[int]) -> None:
        if is_root:
            lines.append(label(node))
            child_prefix = ""
        else:
            connector = "└─ " if is_last else "├─ "
            lines.append(prefix + connector + label(node))
            child_prefix = prefix + ("   " if is_last else "│  ")
        if id(node) in visited:
            return
        visited.add(id(node))
        for i, child in enumerate(node.children):
            walk(child, child_prefix, i == len(node.children) - 1, False, visited)

    visited: set[int] = set()
    for root in graph.roots:
        walk(root, "", True, True, visited)
    return "\n".join(lines)
