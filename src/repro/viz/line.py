"""Line plots, including the log-log strong-scaling chart (Fig. 17)."""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .color import CATEGORICAL
from .scatter import axis_ticks
from .svg import SVGCanvas

__all__ = ["line_plot_svg", "scaling_plot_svg"]


def line_plot_svg(series: dict[str, tuple[Sequence[float], Sequence[float]]],
                  xlabel: str = "x", ylabel: str = "y", title: str = "",
                  width: int = 480, height: int = 340,
                  logx: bool = False, logy: bool = False,
                  dashed: Sequence[str] = ()) -> SVGCanvas:
    """Multi-series line plot; series in *dashed* render with dashes."""
    svg = SVGCanvas(width, height)
    left, right, top, bottom = 64, 16, 36, height - 46
    if title:
        svg.text(width / 2, 18, title, size=12, anchor="middle")

    def tx(v: np.ndarray) -> np.ndarray:
        return np.log2(v) if logx else v

    def ty(v: np.ndarray) -> np.ndarray:
        return np.log2(v) if logy else v

    all_x = np.concatenate([tx(np.asarray(xs, dtype=float))
                            for xs, _ in series.values()])
    all_y = np.concatenate([ty(np.asarray(ys, dtype=float))
                            for _, ys in series.values()])
    x_lo, x_hi = float(all_x.min()), float(all_x.max())
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    x_pad = (x_hi - x_lo) * 0.05 or 1.0
    y_pad = (y_hi - y_lo) * 0.08 or 1.0
    x_lo, x_hi = x_lo - x_pad, x_hi + x_pad
    y_lo, y_hi = y_lo - y_pad, y_hi + y_pad

    def sx(v: float) -> float:
        return left + (v - x_lo) / (x_hi - x_lo) * (width - left - right)

    def sy(v: float) -> float:
        return bottom - (v - y_lo) / (y_hi - y_lo) * (bottom - top)

    svg.line(left, bottom, width - right, bottom, stroke="#444444")
    svg.line(left, bottom, left, top, stroke="#444444")
    for t in axis_ticks(x_lo, x_hi, 6):
        svg.line(sx(t), bottom, sx(t), bottom + 4, stroke="#444444")
        lbl = f"2^{t:g}" if logx else f"{t:g}"
        svg.text(sx(t), bottom + 16, lbl, size=9, anchor="middle")
    for t in axis_ticks(y_lo, y_hi, 6):
        svg.line(left - 4, sy(t), left, sy(t), stroke="#444444")
        lbl = f"2^{t:g}" if logy else f"{t:g}"
        svg.text(left - 6, sy(t) + 3, lbl, size=9, anchor="end")
    suffix = " [log2]" if logx else ""
    svg.text((left + width - right) / 2, height - 8, xlabel + suffix,
             size=11, anchor="middle")
    svg.text(14, (top + bottom) / 2, ylabel + (" [log2]" if logy else ""),
             size=11, anchor="middle", rotate=-90)

    ly = top + 4
    for i, (name, (xs, ys)) in enumerate(series.items()):
        color = CATEGORICAL[i % len(CATEGORICAL)]
        pts = [(sx(float(a)), sy(float(b)))
               for a, b in zip(tx(np.asarray(xs, float)),
                               ty(np.asarray(ys, float)))]
        dash = "5,4" if name in dashed else None
        svg.polyline(pts, stroke=color, width=1.8, dash=dash)
        for px, py in pts:
            svg.circle(px, py, 2.5, fill=color)
        svg.line(width - right - 150, ly, width - right - 130, ly,
                 stroke=color, width=3, dash=dash)
        svg.text(width - right - 126, ly + 3, name, size=9)
        ly += 13
    return svg


def scaling_plot_svg(series: dict[str, tuple[Sequence[float], Sequence[float]]],
                     title: str = "Strong scaling",
                     xlabel: str = "compute nodes",
                     ylabel: str = "time per cycle (s)",
                     with_ideal: bool = True) -> SVGCanvas:
    """Log-log strong-scaling plot with per-series ideal (-1 slope) lines."""
    full = dict(series)
    dashed = []
    if with_ideal:
        for name, (xs, ys) in series.items():
            xs = np.asarray(xs, dtype=float)
            ys = np.asarray(ys, dtype=float)
            ideal_name = f"{name}-ideal"
            full[ideal_name] = (xs, ys[0] * xs[0] / xs)
            dashed.append(ideal_name)
    return line_plot_svg(full, xlabel=xlabel, ylabel=ylabel, title=title,
                         logx=True, logy=True, dashed=dashed)
