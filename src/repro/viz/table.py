"""SVG rendering of DataFrames — the paper's table figures.

Figs. 4-7, 9, 13, 15 and 16 are screenshots of (multi-indexed) tables;
this renderer draws the same artifact headlessly: banner rows for
hierarchical column keys, blanked repeats for MultiIndex rows, and
zebra striping.
"""

from __future__ import annotations

from ..frame import DataFrame
from ..frame.display import format_value
from ..frame.index import MultiIndex
from .svg import SVGCanvas

__all__ = ["table_svg"]


def table_svg(df: DataFrame, title: str = "", max_rows: int = 40,
              font_size: int = 11, float_fmt: str = "{:.6g}") -> SVGCanvas:
    """Render *df* as an SVG table."""
    n = min(len(df), max_rows)

    # --- assemble the text grid (same logic as the text repr) ---------
    if isinstance(df.index, MultiIndex):
        idx_names = [str(nm) if nm is not None else ""
                     for nm in df.index.names]
        idx_rows = [
            [format_value(part, float_fmt) for part in df.index.values[i]]
            for i in range(n)
        ]
        for i in range(n - 1, 0, -1):
            for lv in range(len(idx_names)):
                if idx_rows[i][: lv + 1] == idx_rows[i - 1][: lv + 1]:
                    idx_rows[i][lv] = ""
                else:
                    break
    else:
        idx_names = [str(df.index.name) if df.index.name is not None else ""]
        idx_rows = [[format_value(df.index.values[i], float_fmt)]
                    for i in range(n)]

    nlevels = df.column_nlevels()
    header_rows: list[list[str]] = []
    for lv in range(nlevels):
        row = list(idx_names) if lv == nlevels - 1 else [""] * len(idx_names)
        prev = None
        for c in df.columns:
            parts = c if isinstance(c, tuple) else (c,)
            cell = str(parts[lv]) if lv < len(parts) else ""
            if lv < nlevels - 1 and cell == prev:
                row.append("")
            else:
                row.append(cell)
                prev = cell
        header_rows.append(row)

    body = [
        idx_rows[i] + [format_value(df.column(c)[i], float_fmt)
                       for c in df.columns]
        for i in range(n)
    ]

    grid = header_rows + body
    n_cols = len(idx_names) + len(df.columns)
    char_w = font_size * 0.62
    col_w = [
        max(len(row[j]) for row in grid) * char_w + 14
        for j in range(n_cols)
    ]
    row_h = font_size + 10
    top = 30 if title else 8
    width = int(sum(col_w) + 16)
    height = int(top + row_h * len(grid) + 12)

    svg = SVGCanvas(width, height)
    if title:
        svg.text(8, 20, title, size=font_size + 2)

    n_idx = len(idx_names)
    y = top
    for r, row in enumerate(grid):
        is_header = r < nlevels
        if not is_header and (r - nlevels) % 2 == 1:
            svg.rect(8, y, sum(col_w), row_h, fill="#f2f2f2")
        x = 8
        for j, cell in enumerate(row):
            anchor = "start" if j < n_idx else "end"
            tx = x + 6 if j < n_idx else x + col_w[j] - 6
            svg.text(tx, y + row_h - 7, cell, size=font_size,
                     anchor=anchor,
                     fill="#000000" if is_header else "#222222",
                     family="monospace")
            x += col_w[j]
        if is_header and r == nlevels - 1:
            svg.line(8, y + row_h, 8 + sum(col_w), y + row_h,
                     stroke="#333333")
        y += row_h
    if len(df) > n:
        svg.text(8, y + row_h - 7, f"... ({len(df)} rows)", size=font_size)
    return svg
