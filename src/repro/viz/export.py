"""Data export for the notebook-embedded interactive visualizations.

The paper's §4.3.2 visualizations (tree + table with per-node metric
charts; paired parallel-coordinates + scatter) are JavaScript widgets
fed by a JSON payload assembled from the thicket object.  This module
produces exactly those payloads headlessly, so (a) the data pipeline
behind the interactive views is exercised end-to-end and (b) a front
end can be attached without touching the analysis code.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Hashable, Sequence

import numpy as np

from ..ioutil import atomic_write_text

__all__ = ["tree_table_payload", "pcp_payload", "export_json"]


def _num(v) -> float | None:
    if v is None:
        return None
    f = float(v)
    return None if np.isnan(f) else f


def tree_table_payload(tk, metrics: Sequence[Hashable] | None = None,
                       group_column: str | None = None) -> dict:
    """Payload for the tree+table view (Fig. 14's widget).

    Structure::

        {"tree": nested node dicts with ids,
         "rows": {node_id: [{profile, group, metric values...}]},
         "metrics": [...], "groups": [...]}
    """
    metrics = list(metrics) if metrics is not None else [
        c for c in tk.performance_cols if not isinstance(c, tuple)
    ]
    node_ids = {n: i for i, n in enumerate(tk.graph.node_order())}

    def emit(node) -> dict:
        return {
            "id": node_ids[node],
            "name": node.frame.name,
            "children": [emit(c) for c in node.children],
        }

    group_of = {}
    if group_column is not None:
        for pid, row in tk.metadata.iterrows():
            v = row[group_column]
            group_of[pid] = v.item() if hasattr(v, "item") else v

    rows: dict[int, list[dict]] = {i: [] for i in node_ids.values()}
    columns = {m: tk.dataframe.column(m) for m in metrics
               if m in tk.dataframe}
    for i, t in enumerate(tk.dataframe.index.values):
        entry: dict = {"profile": str(t[1])}
        if group_column is not None:
            entry["group"] = group_of.get(t[1])
        for m, col in columns.items():
            entry[str(m)] = _num(col[i])
        rows[node_ids[t[0]]].append(entry)

    groups = sorted({e.get("group") for lst in rows.values() for e in lst
                     if e.get("group") is not None},
                    key=lambda v: (str(type(v)), v))
    return {
        "tree": [emit(r) for r in tk.graph.roots],
        "rows": {str(k): v for k, v in rows.items()},
        "metrics": [str(m) for m in metrics],
        "groups": groups,
        "group_column": group_column,
    }


def pcp_payload(tk, metadata_columns: Sequence[str],
                metric_columns: Sequence[Hashable] = (),
                node_name: str | None = None,
                color_by: str | None = None) -> dict:
    """Payload for the PCP + scatter view (Fig. 18's widget).

    One record per profile: the requested metadata columns plus,
    optionally, per-profile values of metrics at one call-tree node.
    """
    for c in metadata_columns:
        if c not in tk.metadata:
            raise KeyError(f"metadata column {c!r} not found")

    node = tk.get_node(node_name) if node_name else None
    metric_of: dict[Hashable, dict] = {m: {} for m in metric_columns}
    if node is not None:
        for m in metric_columns:
            col = tk.dataframe.column(m)
            for i, t in enumerate(tk.dataframe.index.values):
                if t[0] is node:
                    metric_of[m][t[1]] = _num(col[i])

    records = []
    for pid, row in tk.metadata.iterrows():
        rec: dict = {"profile": str(pid)}
        for c in metadata_columns:
            v = row[c]
            rec[c] = v.item() if hasattr(v, "item") else v
        for m in metric_columns:
            rec[str(m)] = metric_of[m].get(pid)
        records.append(rec)

    axes = list(metadata_columns) + [str(m) for m in metric_columns]
    return {
        "axes": axes,
        "color_by": color_by,
        "node": node_name,
        "records": records,
    }


def export_json(payload: dict, path: str | Path) -> Path:
    """Write a widget payload to disk."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    return atomic_write_text(path, json.dumps(payload, indent=1,
                                              sort_keys=True))
