"""A minimal SVG document builder (matplotlib substitute backend).

All figure-producing visualizations in :mod:`repro.viz` render to SVG
through this writer so figures can be regenerated headlessly and
checked into experiment output directories.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any

__all__ = ["SVGCanvas"]


def _fmt(v: float) -> str:
    return f"{v:.2f}".rstrip("0").rstrip(".")


def _escape(text: str) -> str:
    return (str(text).replace("&", "&amp;").replace("<", "&lt;")
            .replace(">", "&gt;"))


class SVGCanvas:
    """Accumulates SVG elements; ``to_string()``/``save()`` emit the file."""

    def __init__(self, width: int = 640, height: int = 480,
                 background: str = "#ffffff"):
        self.width = width
        self.height = height
        self._elements: list[str] = []
        if background:
            self.rect(0, 0, width, height, fill=background, stroke="none")

    # ------------------------------------------------------------------
    def _attrs(self, **kwargs: Any) -> str:
        parts = []
        for key, value in kwargs.items():
            if value is None:
                continue
            parts.append(f'{key.replace("_", "-")}="{value}"')
        return " ".join(parts)

    def rect(self, x: float, y: float, w: float, h: float, *,
             fill: str = "#4477aa", stroke: str = "none",
             opacity: float | None = None, title: str | None = None) -> None:
        body = f"<title>{_escape(title)}</title>" if title else ""
        tag = (f'<rect x="{_fmt(x)}" y="{_fmt(y)}" width="{_fmt(w)}" '
               f'height="{_fmt(h)}" '
               + self._attrs(fill=fill, stroke=stroke, opacity=opacity))
        self._elements.append(f"{tag}>{body}</rect>" if body else f"{tag}/>")

    def circle(self, cx: float, cy: float, r: float, *,
               fill: str = "#4477aa", stroke: str = "none",
               opacity: float | None = None, title: str | None = None) -> None:
        body = f"<title>{_escape(title)}</title>" if title else ""
        tag = (f'<circle cx="{_fmt(cx)}" cy="{_fmt(cy)}" r="{_fmt(r)}" '
               + self._attrs(fill=fill, stroke=stroke, opacity=opacity))
        self._elements.append(f"{tag}>{body}</circle>" if body else f"{tag}/>")

    def line(self, x1: float, y1: float, x2: float, y2: float, *,
             stroke: str = "#222222", width: float = 1.0,
             dash: str | None = None) -> None:
        self._elements.append(
            f'<line x1="{_fmt(x1)}" y1="{_fmt(y1)}" x2="{_fmt(x2)}" '
            f'y2="{_fmt(y2)}" '
            + self._attrs(stroke=stroke, stroke_width=width,
                          stroke_dasharray=dash)
            + "/>"
        )

    def polyline(self, points: list[tuple[float, float]], *,
                 stroke: str = "#4477aa", width: float = 1.5,
                 dash: str | None = None) -> None:
        pts = " ".join(f"{_fmt(x)},{_fmt(y)}" for x, y in points)
        self._elements.append(
            f'<polyline points="{pts}" fill="none" '
            + self._attrs(stroke=stroke, stroke_width=width,
                          stroke_dasharray=dash)
            + "/>"
        )

    def text(self, x: float, y: float, content: str, *,
             size: int = 11, anchor: str = "start", fill: str = "#111111",
             rotate: float | None = None, family: str = "sans-serif") -> None:
        transform = (f' transform="rotate({_fmt(rotate)} {_fmt(x)} {_fmt(y)})"'
                     if rotate else "")
        self._elements.append(
            f'<text x="{_fmt(x)}" y="{_fmt(y)}" font-size="{size}" '
            f'font-family="{family}" text-anchor="{anchor}" '
            f'fill="{fill}"{transform}>{_escape(content)}</text>'
        )

    # ------------------------------------------------------------------
    def to_string(self) -> str:
        header = (f'<svg xmlns="http://www.w3.org/2000/svg" '
                  f'width="{self.width}" height="{self.height}" '
                  f'viewBox="0 0 {self.width} {self.height}">')
        return header + "".join(self._elements) + "</svg>"

    def save(self, path: str | Path) -> Path:
        from ..ioutil import atomic_write_text

        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        return atomic_write_text(path, self.to_string())
