"""Scatter plots (Fig. 10 cluster plots, Fig. 18 metadata scatters)."""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from .color import CATEGORICAL
from .svg import SVGCanvas

__all__ = ["scatter_svg", "axis_ticks"]


def axis_ticks(lo: float, hi: float, n: int = 5) -> list[float]:
    """Round tick positions covering [lo, hi]."""
    if hi <= lo:
        hi = lo + 1.0
    raw = (hi - lo) / max(n - 1, 1)
    mag = 10 ** np.floor(np.log10(raw))
    step = float(min(
        (m * mag for m in (1, 2, 2.5, 5, 10) if m * mag >= raw),
        default=raw,
    ))
    start = np.floor(lo / step) * step
    ticks = []
    t = start
    while t <= hi + step * 0.5:
        if t >= lo - step * 0.5:
            ticks.append(round(t, 10))
        t += step
    return ticks


def scatter_svg(x: Sequence[float], y: Sequence[float],
                labels: Sequence[Any] | None = None,
                colors_by: Sequence[Any] | None = None,
                xlabel: str = "x", ylabel: str = "y", title: str = "",
                width: int = 420, height: int = 320,
                point_r: float = 4.0) -> SVGCanvas:
    """Scatter with optional categorical colouring and per-point tooltips."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if len(x) != len(y):
        raise ValueError("x and y must have equal length")
    svg = SVGCanvas(width, height)
    left, right, top, bottom = 56, 16, 34, height - 44
    if title:
        svg.text(width / 2, 18, title, size=12, anchor="middle")

    finite = np.isfinite(x) & np.isfinite(y)
    xs, ys = x[finite], y[finite]
    if len(xs) == 0:
        return svg
    x_lo, x_hi = float(xs.min()), float(xs.max())
    y_lo, y_hi = float(ys.min()), float(ys.max())
    x_pad = (x_hi - x_lo) * 0.05 or 1.0
    y_pad = (y_hi - y_lo) * 0.05 or 1.0
    x_lo, x_hi = x_lo - x_pad, x_hi + x_pad
    y_lo, y_hi = y_lo - y_pad, y_hi + y_pad

    def sx(v: float) -> float:
        return left + (v - x_lo) / (x_hi - x_lo) * (width - left - right)

    def sy(v: float) -> float:
        return bottom - (v - y_lo) / (y_hi - y_lo) * (bottom - top)

    svg.line(left, bottom, width - right, bottom, stroke="#444444")
    svg.line(left, bottom, left, top, stroke="#444444")
    for t in axis_ticks(x_lo, x_hi):
        svg.line(sx(t), bottom, sx(t), bottom + 4, stroke="#444444")
        svg.text(sx(t), bottom + 16, f"{t:g}", size=9, anchor="middle")
    for t in axis_ticks(y_lo, y_hi):
        svg.line(left - 4, sy(t), left, sy(t), stroke="#444444")
        svg.text(left - 6, sy(t) + 3, f"{t:g}", size=9, anchor="end")
    svg.text((left + width - right) / 2, height - 8, xlabel, size=11,
             anchor="middle")
    svg.text(14, (top + bottom) / 2, ylabel, size=11, anchor="middle",
             rotate=-90)

    palette: dict[Any, str] = {}
    for i in range(len(x)):
        if not finite[i]:
            continue
        color = CATEGORICAL[0]
        if colors_by is not None:
            key = colors_by[i]
            if key not in palette:
                palette[key] = CATEGORICAL[len(palette) % len(CATEGORICAL)]
            color = palette[key]
        tooltip = str(labels[i]) if labels is not None else None
        svg.circle(sx(x[i]), sy(y[i]), point_r, fill=color, opacity=0.85,
                   title=tooltip)

    # categorical legend
    ly = top
    for key, color in palette.items():
        svg.circle(width - right - 90, ly, 4, fill=color)
        svg.text(width - right - 82, ly + 3, str(key), size=9)
        ly += 14
    return svg
