"""Parallel-coordinate plot of the metadata table (Fig. 18).

One vertical axis per metadata/metric variable; each profile traces a
polyline across them, coloured by a categorical variable (architecture
in the paper).  Also provides the inverse-correlation detector the case
study reads off the plot: heavy line criss-crossing between adjacent
axes indicates negative correlation (more MPI ranks ↔ lower walltime).
"""

from __future__ import annotations

from typing import Any, Hashable, Sequence

import numpy as np

from ..frame import DataFrame
from .color import CATEGORICAL
from .svg import SVGCanvas

__all__ = ["parallel_coordinates_svg", "crossing_fraction", "axis_values"]


def axis_values(df: DataFrame, column: Hashable) -> np.ndarray:
    """Numeric positions for a column; categoricals get rank positions."""
    col = df.column(column)
    if col.dtype.kind in "if":
        return col.astype(np.float64)
    uniq = sorted({str(v) for v in col})
    rank = {v: i for i, v in enumerate(uniq)}
    return np.asarray([rank[str(v)] for v in col], dtype=np.float64)


def crossing_fraction(df: DataFrame, col_a: Hashable, col_b: Hashable) -> float:
    """Fraction of profile pairs whose lines cross between two axes.

    0 = perfectly parallel (positive correlation), 1 = all pairs cross
    (perfect inverse correlation) — the PCP "criss-crossing" signal.
    """
    a = axis_values(df, col_a)
    b = axis_values(df, col_b)
    n = len(a)
    if n < 2:
        return 0.0
    crossings = 0
    pairs = 0
    for i in range(n):
        for j in range(i + 1, n):
            da, db = a[i] - a[j], b[i] - b[j]
            if da == 0 or db == 0:
                continue
            pairs += 1
            if (da > 0) != (db > 0):
                crossings += 1
    return crossings / pairs if pairs else 0.0


def parallel_coordinates_svg(df: DataFrame, columns: Sequence[Hashable],
                             color_by: Hashable | None = None,
                             width: int = 720, height: int = 360,
                             title: str = "") -> SVGCanvas:
    """Render the PCP; ``color_by`` picks the categorical colouring axis."""
    svg = SVGCanvas(width, height)
    if not columns or len(df) == 0:
        return svg
    left, right, top, bottom = 60, 40, 50, height - 40
    if title:
        svg.text(width / 2, 20, title, size=13, anchor="middle")

    n_axes = len(columns)
    gap = (width - left - right) / max(n_axes - 1, 1)
    axis_x = [left + i * gap for i in range(n_axes)]

    # normalized vertical positions per axis
    positions = []
    for c in columns:
        vals = axis_values(df, c)
        lo, hi = float(np.nanmin(vals)), float(np.nanmax(vals))
        span = (hi - lo) or 1.0
        positions.append((vals - lo) / span)
        # axis range labels
        raw = df.column(c)
        lo_lbl = f"{lo:g}" if raw.dtype.kind in "if" else ""
        hi_lbl = f"{hi:g}" if raw.dtype.kind in "if" else ""
        i = columns.index(c)
        svg.text(axis_x[i], bottom + 14, lo_lbl, size=8, anchor="middle")
        svg.text(axis_x[i], top - 18, hi_lbl, size=8, anchor="middle")

    for i, c in enumerate(columns):
        svg.line(axis_x[i], top, axis_x[i], bottom, stroke="#888888")
        svg.text(axis_x[i], top - 30, str(c), size=10, anchor="middle")

    palette: dict[Any, str] = {}
    color_vals = df.column(color_by) if color_by is not None else None
    for r in range(len(df)):
        pts = []
        for i in range(n_axes):
            y = bottom - positions[i][r] * (bottom - top)
            pts.append((axis_x[i], y))
        color = CATEGORICAL[0]
        if color_vals is not None:
            key = str(color_vals[r])
            if key not in palette:
                palette[key] = CATEGORICAL[len(palette) % len(CATEGORICAL)]
            color = palette[key]
        svg.polyline(pts, stroke=color, width=1.2)

    ly = top
    for key, color in palette.items():
        svg.line(10, ly, 30, ly, stroke=color, width=3)
        svg.text(34, ly + 3, key, size=9)
        ly += 14
    return svg
