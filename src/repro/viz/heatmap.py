"""Heatmap of a statsframe (Fig. 12 top).

Renders node × metric matrices either as ANSI text (quick terminal
introspection) or as an SVG figure, and exposes the outlier-detection
helper the case study uses: cells whose value is extreme relative to
their column.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from ..frame import DataFrame
from .color import sequential
from .svg import SVGCanvas

__all__ = ["heatmap_svg", "heatmap_text", "find_outlier_cells"]


def _matrix(stats: DataFrame, columns: Sequence[Hashable]
            ) -> tuple[list[str], np.ndarray]:
    if "name" in stats:
        labels = [str(v) for v in stats.column("name")]
    else:
        def label_of(t):
            if hasattr(t, "frame"):
                return t.frame.name
            if isinstance(t, tuple) and t and hasattr(t[0], "frame"):
                return t[0].frame.name
            return str(t)

        labels = [label_of(t) for t in stats.index.values]
    mat = np.column_stack([
        stats.column(c).astype(np.float64) for c in columns
    ])
    return labels, mat


def _normalize_columns(mat: np.ndarray) -> np.ndarray:
    out = np.zeros_like(mat)
    for j in range(mat.shape[1]):
        col = mat[:, j]
        finite = col[np.isfinite(col)]
        lo = finite.min() if len(finite) else 0.0
        hi = finite.max() if len(finite) else 1.0
        span = (hi - lo) or 1.0
        out[:, j] = (col - lo) / span
    return out


def heatmap_text(stats: DataFrame, columns: Sequence[Hashable],
                 width: int = 10) -> str:
    """ANSI block-character heatmap (normalized per column)."""
    labels, mat = _matrix(stats, columns)
    norm = _normalize_columns(mat)
    shades = " ░▒▓█"
    name_w = max((len(x) for x in labels), default=4)
    widths = [max(width, len(str(c))) for c in columns]
    header = " " * name_w + "  " + "  ".join(
        str(c).rjust(w) for c, w in zip(columns, widths)
    )
    lines = [header]
    for i, label in enumerate(labels):
        cells = []
        for j, w in enumerate(widths):
            v = norm[i, j]
            if not np.isfinite(v):
                cells.append("-".ljust(w))
                continue
            ch = shades[min(int(v * len(shades)), len(shades) - 1)]
            cells.append((ch * 2 + f" {mat[i, j]:.4g}").ljust(w))
        lines.append(label.rjust(name_w) + "  " + "  ".join(cells))
    return "\n".join(lines)


def heatmap_svg(stats: DataFrame, columns: Sequence[Hashable],
                cell_w: int = 90, cell_h: int = 24,
                label_w: int = 220, title: str = "") -> SVGCanvas:
    """SVG heatmap, one row per node, per-column normalized colour."""
    labels, mat = _matrix(stats, columns)
    norm = _normalize_columns(mat)
    top = 40
    width = label_w + cell_w * len(columns) + 20
    height = top + cell_h * len(labels) + 30
    svg = SVGCanvas(width, height)
    if title:
        svg.text(10, 20, title, size=13)
    for j, c in enumerate(columns):
        svg.text(label_w + j * cell_w + cell_w / 2, top - 6, str(c),
                 size=10, anchor="middle")
    for i, label in enumerate(labels):
        y = top + i * cell_h
        svg.text(label_w - 6, y + cell_h * 0.7, label, size=10, anchor="end")
        for j in range(len(columns)):
            if not np.isfinite(norm[i, j]):
                svg.rect(label_w + j * cell_w, y, cell_w - 2, cell_h - 2,
                         fill="#eeeeee", title=f"{label}: no data")
                continue
            svg.rect(label_w + j * cell_w, y, cell_w - 2, cell_h - 2,
                     fill=sequential(norm[i, j]),
                     title=f"{label} / {columns[j]}: {mat[i, j]:.6g}")
            svg.text(label_w + j * cell_w + cell_w / 2, y + cell_h * 0.7,
                     f"{mat[i, j]:.3g}", size=9, anchor="middle",
                     fill="#333333" if norm[i, j] < 0.6 else "#ffffff")
    return svg


def find_outlier_cells(stats: DataFrame, columns: Sequence[Hashable],
                       threshold: float = 0.8) -> list[tuple[str, Hashable, float]]:
    """Cells whose column-normalized value exceeds *threshold*.

    This is the programmatic version of "the heatmap identifies two
    nodes as outliers" in Fig. 12: dark cells = candidate outliers.
    """
    labels, mat = _matrix(stats, columns)
    norm = _normalize_columns(mat)
    out = []
    for i, label in enumerate(labels):
        for j, col in enumerate(columns):
            if np.isfinite(norm[i, j]) and norm[i, j] >= threshold:
                out.append((label, col, float(mat[i, j])))
    return out
