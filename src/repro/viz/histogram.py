"""Per-node histograms (Fig. 12 insets).

Shows the distribution of one metric for one call-tree node across the
ensemble's profiles — the "dive deeper into the outliers" step of the
case study.
"""

from __future__ import annotations

from typing import Hashable

import numpy as np

from .svg import SVGCanvas

__all__ = ["histogram_counts", "histogram_text", "histogram_svg",
           "node_metric_values"]


def node_metric_values(tk, node_name: str, column: Hashable) -> np.ndarray:
    """All per-profile values of *column* for the node named *node_name*."""
    values = []
    col = tk.dataframe.column(column)
    for i, t in enumerate(tk.dataframe.index.values):
        if t[0].frame.name == node_name:
            v = col[i]
            if v is not None and np.isfinite(v):
                values.append(float(v))
    return np.asarray(values)


def histogram_counts(values: np.ndarray, bins: int = 10
                     ) -> tuple[np.ndarray, np.ndarray]:
    """``(counts, edges)`` via numpy, tolerant of empty input."""
    values = np.asarray(values, dtype=np.float64)
    if len(values) == 0:
        return np.zeros(bins, dtype=int), np.linspace(0, 1, bins + 1)
    return np.histogram(values, bins=bins)


def histogram_text(values: np.ndarray, bins: int = 10, width: int = 40,
                   title: str = "") -> str:
    """ASCII histogram with one bar row per bin."""
    counts, edges = histogram_counts(values, bins)
    peak = counts.max() or 1
    lines = [title] if title else []
    for c, lo, hi in zip(counts, edges[:-1], edges[1:]):
        bar = "█" * int(round(width * c / peak))
        lines.append(f"[{lo:10.4g}, {hi:10.4g})  {bar} {c}")
    return "\n".join(lines)


def histogram_svg(values: np.ndarray, bins: int = 10, width: int = 320,
                  height: int = 200, title: str = "",
                  fill: str = "#4477AA") -> SVGCanvas:
    counts, edges = histogram_counts(values, bins)
    svg = SVGCanvas(width, height)
    left, bottom, top = 40, height - 30, 30
    if title:
        svg.text(width / 2, 18, title, size=12, anchor="middle")
    peak = counts.max() or 1
    plot_w = width - left - 10
    plot_h = bottom - top
    bar_w = plot_w / len(counts)
    for i, c in enumerate(counts):
        h = plot_h * c / peak
        svg.rect(left + i * bar_w + 1, bottom - h, bar_w - 2, h, fill=fill,
                 title=f"[{edges[i]:.4g}, {edges[i+1]:.4g}): {c}")
    svg.line(left, bottom, left + plot_w, bottom, stroke="#444444")
    svg.line(left, bottom, left, top, stroke="#444444")
    svg.text(left, bottom + 14, f"{edges[0]:.4g}", size=9)
    svg.text(left + plot_w, bottom + 14, f"{edges[-1]:.4g}", size=9,
             anchor="end")
    svg.text(left - 4, top + 8, str(int(peak)), size=9, anchor="end")
    return svg
