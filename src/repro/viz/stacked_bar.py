"""The tree+table top-down visualization (Fig. 14).

For each call-tree node of interest, renders one stacked bar per
profile — the four top-down fractions stacked to height 1 — grouped and
sorted by an independent variable (problem size in the paper).  The SVG
version places the call tree on the left and bar groups on the right,
mirroring the notebook-embedded design; a text version supports
terminal inspection.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..topdown import TOPDOWN_METRICS
from .color import TOPDOWN_COLORS
from .svg import SVGCanvas

__all__ = ["topdown_table", "topdown_text", "topdown_svg"]


def topdown_table(tk, group_column: str,
                  metrics: Sequence[str] = TOPDOWN_METRICS,
                  nodes: Sequence[str] | None = None):
    """Collect (node, group-value) → mean top-down fractions.

    *group_column* is a metadata column (e.g. ``problem_size``).
    Returns an ordered dict keyed by node name, each value an ordered
    dict group-value → {metric: mean fraction}.
    """
    group_of = {
        pid: row[group_column] for pid, row in tk.metadata.iterrows()
    }
    acc: dict[str, dict] = {}
    cols = {m: tk.dataframe.column(m) for m in metrics if m in tk.dataframe}
    for i, t in enumerate(tk.dataframe.index.values):
        name = t[0].frame.name
        if nodes is not None and name not in nodes:
            continue
        group = group_of[t[1]]
        group = group.item() if hasattr(group, "item") else group
        bucket = acc.setdefault(name, {}).setdefault(
            group, {m: [] for m in cols}
        )
        for m, col in cols.items():
            v = col[i]
            if v is not None and np.isfinite(v):
                bucket[m].append(float(v))
    out: dict[str, dict] = {}
    for name, groups in acc.items():
        out[name] = {}
        for group in sorted(groups):
            out[name][group] = {
                m: (float(np.mean(vs)) if vs else 0.0)
                for m, vs in groups[group].items()
            }
    return out


def topdown_text(tk, group_column: str,
                 metrics: Sequence[str] = TOPDOWN_METRICS,
                 nodes: Sequence[str] | None = None, width: int = 30) -> str:
    """Terminal rendering: one bar line per (node, group)."""
    glyphs = {"Retiring": "R", "Frontend bound": "F",
              "Backend bound": "B", "Bad speculation": "S"}
    table = topdown_table(tk, group_column, metrics, nodes)
    lines = []
    for name, groups in table.items():
        lines.append(name)
        for group, fractions in groups.items():
            bar = ""
            for m in metrics:
                n = int(round(width * fractions.get(m, 0.0)))
                bar += glyphs.get(m, "?") * n
            lines.append(f"  {group!s:>10}  |{bar[:width].ljust(width)}|")
    legend = "  ".join(f"{g}={m}" for m, g in glyphs.items())
    lines.append(f"legend: {legend}")
    return "\n".join(lines)


def topdown_svg(tk, group_column: str,
                metrics: Sequence[str] = TOPDOWN_METRICS,
                nodes: Sequence[str] | None = None,
                bar_w: int = 46, bar_h: int = 90) -> SVGCanvas:
    """SVG tree+table view: node labels left, grouped stacked bars right."""
    table = topdown_table(tk, group_column, metrics, nodes)
    label_w = 260
    n_groups = max((len(g) for g in table.values()), default=0)
    row_h = bar_h + 36
    width = label_w + n_groups * (bar_w + 8) + 40
    height = 40 + row_h * len(table) + 30
    svg = SVGCanvas(width, height)
    svg.text(10, 20, f"Top-down by {group_column}", size=13)

    for r, (name, groups) in enumerate(table.items()):
        y0 = 40 + r * row_h
        svg.text(label_w - 10, y0 + bar_h / 2, name, size=10, anchor="end")
        for gi, (group, fractions) in enumerate(groups.items()):
            x = label_w + gi * (bar_w + 8)
            y = y0 + bar_h
            for m in metrics:
                frac = fractions.get(m, 0.0)
                h = bar_h * frac
                y -= h
                svg.rect(x, y, bar_w, h,
                         fill=TOPDOWN_COLORS.get(m, "#999999"),
                         title=f"{name} @ {group}: {m} = {frac:.3f}")
            svg.text(x + bar_w / 2, y0 + bar_h + 14, str(group), size=8,
                     anchor="middle")

    # legend
    lx = 10
    ly = height - 14
    for m in metrics:
        svg.rect(lx, ly - 10, 12, 12, fill=TOPDOWN_COLORS.get(m, "#999999"))
        svg.text(lx + 16, ly, m, size=10)
        lx += 16 + 8 * len(m) + 24
    return svg
