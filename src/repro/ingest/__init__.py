"""``repro.ingest`` — fault-tolerant campaign ingestion.

The campaign-scale loading path: schema validation, per-profile error
policies (``strict``/``skip``/``collect``), transient-I/O retry,
quarantine reporting, and crash-tolerant resumable checkpoints
(``load_ensemble(..., checkpoint=DIR)``).  See :func:`load_ensemble`.
"""

from .checkpoint import CheckpointJournal
from .pipeline import ERROR_POLICIES, load_ensemble
from .report import (
    IngestReport,
    IngestResult,
    QuarantinedProfile,
    RepairedProfileId,
)
from .schema import validate_cali_payload

__all__ = [
    "load_ensemble",
    "ERROR_POLICIES",
    "IngestReport",
    "IngestResult",
    "QuarantinedProfile",
    "RepairedProfileId",
    "validate_cali_payload",
    "CheckpointJournal",
]
