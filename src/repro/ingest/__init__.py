"""``repro.ingest`` — fault-tolerant campaign ingestion.

The campaign-scale loading path: schema validation, per-profile error
policies (``strict``/``skip``/``collect``), transient-I/O retry,
quarantine reporting, crash-tolerant resumable checkpoints
(``load_ensemble(..., checkpoint=DIR)``), and supervised parallel
execution (``load_ensemble(..., policy=ResiliencePolicy(jobs=4))``;
see :mod:`repro.resilience`).  See :func:`load_ensemble`.
"""

from .checkpoint import CheckpointJournal
from .pipeline import ERROR_POLICIES, FAULT_KEY, load_ensemble
from .report import (
    IngestReport,
    IngestResult,
    QuarantinedProfile,
    RepairedProfileId,
)
from .schema import validate_cali_payload

__all__ = [
    "load_ensemble",
    "ERROR_POLICIES",
    "FAULT_KEY",
    "IngestReport",
    "IngestResult",
    "QuarantinedProfile",
    "RepairedProfileId",
    "validate_cali_payload",
    "CheckpointJournal",
]
