"""Structured results of a fault-tolerant ensemble ingestion.

``load_ensemble`` never swallows a failure: every profile it drops is
recorded as a :class:`QuarantinedProfile` (source, pipeline stage, and
the typed exception), and every profile-id collision it repairs is
recorded as a :class:`RepairedProfileId`.  The :class:`IngestReport`
aggregates these into something a human can read (``summary()``) and a
script can act on (``to_dict()``, exit-code-ready ``ok``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, NamedTuple

from ..errors import ReproError

__all__ = ["QuarantinedProfile", "RepairedProfileId", "IngestReport",
           "IngestResult"]


@dataclass(frozen=True)
class QuarantinedProfile:
    """One profile dropped from the ensemble, with full attribution."""

    source: str            # file path / positional label of the input
    stage: str             # pipeline stage that failed: read/validate/build/compose
    error: ReproError      # the typed exception (never a bare KeyError)
    index: int             # position of the profile in the input sequence

    @property
    def error_type(self) -> str:
        """Class name of the typed error, e.g. ``SchemaError``."""
        return type(self.error).__name__

    def describe(self) -> str:
        """One-line ``source [stage] ErrorType: message`` rendering."""
        return (f"{self.source} [{self.stage}] "
                f"{self.error_type}: {self.error}")


@dataclass(frozen=True)
class RepairedProfileId:
    """A deterministically repaired profile-id collision."""

    source: str
    original: Any
    repaired: Any

    def describe(self) -> str:
        """One-line description of the collision and its repair."""
        return (f"{self.source}: profile id {self.original!r} collided, "
                f"repaired to {self.repaired!r}")


@dataclass
class IngestReport:
    """Outcome of one :func:`repro.ingest.load_ensemble` run."""

    policy: str
    requested: int = 0
    loaded: list = field(default_factory=list)        # sources that made it in
    quarantined: list = field(default_factory=list)   # QuarantinedProfile
    repaired: list = field(default_factory=list)      # RepairedProfileId
    stage_seconds: dict = field(default_factory=dict)  # stage -> wall seconds
    checkpoint_path: str | None = None     # journal dir, when checkpointing
    resumed: list = field(default_factory=list)  # sources rebuilt from journal
    resumed_quarantined: int = 0  # quarantines skipped thanks to the journal
    jobs: int = 1                 # worker-pool width (1 = serial)
    timeouts: int = 0             # tasks killed for deadline overrun
    worker_crashes: int = 0       # tasks lost to dead/hung workers
    breaker_trips: int = 0        # circuit-breaker closed/half-open → open

    @property
    def n_loaded(self) -> int:
        """Number of profiles that made it into the thicket."""
        return len(self.loaded)

    @property
    def n_quarantined(self) -> int:
        """Number of profiles set aside with a typed error."""
        return len(self.quarantined)

    @property
    def n_resumed(self) -> int:
        """Number of profiles rebuilt from the checkpoint journal."""
        return len(self.resumed)

    @property
    def ok(self) -> bool:
        """True iff every requested profile composed cleanly."""
        return not self.quarantined and not self.repaired

    def errors_by_stage(self) -> dict[str, int]:
        """Quarantine counts keyed by failing pipeline stage."""
        out: dict[str, int] = {}
        for q in self.quarantined:
            out[q.stage] = out.get(q.stage, 0) + 1
        return out

    def summary(self) -> str:
        """Human-readable quarantine summary (one profile per line)."""
        lines = [
            f"ingest: {self.n_loaded}/{self.requested} profiles loaded "
            f"(policy={self.policy}, quarantined={self.n_quarantined}, "
            f"repaired ids={len(self.repaired)})"
        ]
        if self.checkpoint_path is not None:
            lines.append(
                f"  checkpoint: {self.checkpoint_path} "
                f"({self.n_resumed} resumed, "
                f"{self.resumed_quarantined} quarantine(s) skipped)")
        if self.jobs > 1 or self.timeouts or self.worker_crashes \
                or self.breaker_trips:
            lines.append(
                f"  execution: jobs={self.jobs}, "
                f"timeouts={self.timeouts}, "
                f"worker crashes={self.worker_crashes}, "
                f"breaker trips={self.breaker_trips}")
        for q in self.quarantined:
            lines.append(f"  - {q.describe()}")
        for r in self.repaired:
            lines.append(f"  ~ {r.describe()}")
        if self.stage_seconds:
            total = sum(self.stage_seconds.values())
            stages = ", ".join(f"{k}={v:.3f}s"
                               for k, v in self.stage_seconds.items())
            lines.append(f"  stages: {stages} (total {total:.3f}s)")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-serialisable form for scripted consumers."""
        return {
            "policy": self.policy,
            "requested": self.requested,
            "loaded": [str(s) for s in self.loaded],
            "quarantined": [
                {"source": q.source, "stage": q.stage,
                 "error_type": q.error_type, "error": str(q.error),
                 "index": q.index}
                for q in self.quarantined
            ],
            "repaired": [
                {"source": r.source, "original": repr(r.original),
                 "repaired": repr(r.repaired)}
                for r in self.repaired
            ],
            "stage_seconds": {k: round(v, 6)
                              for k, v in self.stage_seconds.items()},
            "checkpoint": {
                "path": self.checkpoint_path,
                "resumed": self.n_resumed,
                "resumed_quarantined": self.resumed_quarantined,
            },
            "execution": {
                "jobs": self.jobs,
                "timeouts": self.timeouts,
                "worker_crashes": self.worker_crashes,
                "breaker_trips": self.breaker_trips,
            },
        }


class IngestResult(NamedTuple):
    """``(thicket, report)`` pair returned by ``load_ensemble``.

    ``thicket`` is ``None`` when no profile survived under a
    non-strict policy.
    """

    thicket: Any
    report: IngestReport
