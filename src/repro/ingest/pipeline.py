"""Fault-tolerant ensemble ingestion (read → validate → build → compose).

``load_ensemble`` is the campaign-scale loading path: where
``Thicket.from_caliperreader`` historically aborted a 1,900-profile
composition on the first truncated file, this pipeline pushes every
profile through four stages and applies a per-profile *error policy*:

``strict``
    Raise the first typed error (:class:`repro.errors.ReproError`
    subclass naming the offending file and stage).  The default, and
    the old behaviour — minus the raw ``KeyError``.
``skip``
    Drop bad profiles, emitting a ``warnings.warn`` per drop, and
    compose the rest.
``collect``
    Drop bad profiles silently and return a structured
    :class:`IngestReport` attributing every quarantined profile to its
    exception, stage, and source.

Transient I/O errors (``OSError`` other than a missing file) are
retried with bounded exponential backoff before the profile is given
up on.  Colliding profile ids are repaired deterministically under
``skip``/``collect`` (and recorded in the report) instead of aborting
the whole ensemble.

With ``checkpoint=DIR`` every per-profile outcome is additionally
journaled to a crash-tolerant JSONL file plus incrementally saved
GraphFrame payloads (:mod:`repro.ingest.checkpoint`); a re-run after
an interruption resumes from the journal, skipping already-ingested
and already-quarantined profiles.  Resume counts surface in the
:class:`IngestReport` and the ``ingest.checkpoint.*`` obs counters.
"""

from __future__ import annotations

import hashlib
import json
import logging
import time
import warnings
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterable, Mapping

import numpy as np

from ..errors import (
    CompositionError,
    ProfileConflictError,
    ReaderError,
    ReproError,
)
from ..graph import GraphFrame
from ..obs import counter as obs_counter
from ..obs import span as obs_span
from ..readers.caliper import read_cali_dict
from .report import (
    IngestReport,
    IngestResult,
    QuarantinedProfile,
    RepairedProfileId,
)
from .schema import validate_cali_payload

__all__ = ["load_ensemble", "ERROR_POLICIES"]

ERROR_POLICIES = ("strict", "skip", "collect")

logger = logging.getLogger("repro.ingest")


@contextmanager
def _timed(timings: dict[str, float], stage: str):
    """Accumulate wall seconds for *stage*; always on (two clock reads
    per stage are noise next to JSON parsing), independent of whether
    span tracing is enabled."""
    t0 = time.perf_counter()
    try:
        yield
    finally:
        timings[stage] = (timings.get(stage, 0.0)
                          + time.perf_counter() - t0)


def _read_text(path: Path) -> str:
    """Read a profile file; module-level so tests can inject faults."""
    return path.read_text()


def _read_with_retry(path: Path, max_retries: int, base_delay: float,
                     sleep) -> str:
    """Read *path*, retrying transient ``OSError`` with backoff.

    A missing file is permanent and is never retried.
    """
    attempt = 0
    while True:
        try:
            return _read_text(path)
        except FileNotFoundError as e:
            raise ReaderError(f"profile file not found: {path}",
                              source=path) from e
        except OSError as e:
            if attempt >= max_retries:
                logger.error(
                    "giving up on %s after %d attempt(s): %s",
                    path, attempt + 1, e)
                raise ReaderError(
                    f"I/O error reading {path} after {attempt + 1} "
                    f"attempt(s): {e}", source=path) from e
            delay = base_delay * (2 ** attempt)
            logger.warning(
                "transient I/O error reading %s (attempt %d/%d): %s; "
                "retrying in %.3fs", path, attempt + 1, max_retries + 1,
                e, delay)
            obs_counter("ingest.read.retries")
            sleep(delay)
            attempt += 1


def _source_label(src: Any, index: int) -> str:
    if isinstance(src, GraphFrame):
        return str(src.metadata.get("profile.file",
                                    f"<graphframe #{index}>"))
    if isinstance(src, Mapping):
        return f"<payload #{index}>"
    return str(src)


def _load_one(src: Any, index: int, validate: bool, max_retries: int,
              base_delay: float, sleep,
              timings: dict[str, float]) -> GraphFrame:
    """Run one source through read → validate → build.

    Raises only :class:`ReproError` subclasses.  Per-stage wall time
    accumulates into *timings* (keys ``read``/``validate``/``build``).
    """
    if isinstance(src, GraphFrame):
        return src

    source = _source_label(src, index)
    if isinstance(src, Mapping):
        payload: Any = src
    else:
        with _timed(timings, "read"), obs_span("ingest.read",
                                               source=source):
            text = _read_with_retry(Path(src), max_retries, base_delay,
                                    sleep)
            try:
                payload = json.loads(text)
            except json.JSONDecodeError as e:
                raise ReaderError(f"invalid JSON in {source}: {e}",
                                  source=source) from e

    if validate:
        with _timed(timings, "validate"), obs_span("ingest.validate",
                                                   source=source):
            validate_cali_payload(payload, source=source)
    with _timed(timings, "build"), obs_span("ingest.build", source=source):
        try:
            gf = read_cali_dict(payload, source=source)
        except ReproError:
            raise
        except (KeyError, IndexError, TypeError, ValueError,
                AttributeError) as e:
            # belt and braces: nothing structural may escape untyped
            raise ReaderError(
                f"failed to build call tree from {source}: "
                f"{type(e).__name__}: {e}", source=source,
                stage="build") from e
    if not isinstance(src, (GraphFrame, Mapping)):
        gf.metadata.setdefault("profile.file", str(src))
    return gf


def _repair_id(pid: Any, occurrence: int) -> Any:
    """Deterministic replacement id for the *occurrence*-th collision."""
    if isinstance(pid, (int, np.integer)) and not isinstance(pid, bool):
        digest = hashlib.sha256(f"{pid}:{occurrence}".encode()).digest()
        return int.from_bytes(digest[:8], "big", signed=True)
    return f"{pid}#{occurrence}"


def _derive_profile_ids(gfs, sources, metadata_key, on_error, report):
    """Profile id per GraphFrame; collisions repaired or raised.

    Returns ``(kept_gfs, kept_sources, profile_ids)`` — under non-strict
    policies a profile whose id cannot be derived is quarantined here
    (stage ``compose``) rather than aborting the ensemble.
    """
    from ..core.thicket import profile_hash

    kept_gfs, kept_sources, ids = [], [], []
    for (idx, source), gf in zip(sources, gfs):
        try:
            if metadata_key is not None:
                if metadata_key not in gf.metadata:
                    raise ProfileConflictError(
                        f"metadata_key {metadata_key!r} missing from "
                        f"profile #{idx} ({source})", source=source)
                pid = gf.metadata[metadata_key]
            else:
                pid = profile_hash(gf.metadata)
        except ReproError as e:
            if on_error == "strict":
                raise
            if on_error == "skip":
                warnings.warn(f"skipping profile: {e}", stacklevel=3)
            logger.warning("quarantined profile %s [compose]: %s: %s",
                           source, type(e).__name__, e)
            obs_counter("ingest.profiles.quarantined")
            report.quarantined.append(
                QuarantinedProfile(source=source, stage=e.stage,
                                   error=e, index=idx))
            continue
        kept_gfs.append(gf)
        kept_sources.append((idx, source))
        ids.append(pid)

    seen: dict[Any, int] = {}
    final_ids = []
    for (idx, source), pid in zip(kept_sources, ids):
        if pid in seen:
            if on_error == "strict":
                first = kept_sources[seen[pid]][1]
                raise ProfileConflictError(
                    f"profile id {pid!r} of {source} collides with "
                    f"{first}; choose a different metadata_key or use "
                    f"on_error='skip'/'collect'", source=source)
            occurrence = 1
            new = _repair_id(pid, occurrence)
            while new in seen or new in ids:
                occurrence += 1
                new = _repair_id(pid, occurrence)
            logger.warning("profile id %r of %s collided; repaired to %r",
                           pid, source, new)
            obs_counter("ingest.profile_ids.repaired")
            report.repaired.append(
                RepairedProfileId(source=source, original=pid, repaired=new))
            pid = new
        seen[pid] = len(final_ids)
        final_ids.append(pid)
    return kept_gfs, kept_sources, final_ids


def _resume_quarantined(rec: Mapping, source: str, idx: int,
                        on_error: str, report) -> None:
    """Re-attribute a journaled quarantine without re-reading the file."""
    import repro.errors as errors_mod

    err_cls = getattr(errors_mod, rec.get("error_type", ""), ReproError)
    if not (isinstance(err_cls, type) and issubclass(err_cls, ReproError)):
        err_cls = ReproError
    error = err_cls(str(rec.get("error", "quarantined in a previous run")),
                    source=source, stage=rec.get("stage", "ingest"))
    if on_error == "skip":
        warnings.warn(f"skipping profile (from checkpoint): {error}",
                      stacklevel=3)
    logger.info("checkpoint: skipping previously quarantined profile %s "
                "[%s]", source, error.stage)
    obs_counter("ingest.checkpoint.quarantine_skipped")
    obs_counter("ingest.profiles.quarantined")
    report.resumed_quarantined += 1
    report.quarantined.append(
        QuarantinedProfile(source=source, stage=error.stage, error=error,
                           index=idx))


def load_ensemble(sources: Iterable[Any] | Any,
                  on_error: str = "strict",
                  metadata_key: str | None = None,
                  intersection: bool = False,
                  fill_perfdata: bool = False,
                  validate: bool = True,
                  max_retries: int = 2,
                  retry_base_delay: float = 0.05,
                  sleep=None,
                  checkpoint: Any = None) -> IngestResult:
    """Compose an ensemble of cali-JSON profiles fault-tolerantly.

    Parameters
    ----------
    sources:
        File paths, payload dicts, and/or GraphFrames (mixed is fine).
    on_error:
        ``"strict"`` (raise first error), ``"skip"`` (drop + warn), or
        ``"collect"`` (drop silently, attribute in the report).
    metadata_key / intersection / fill_perfdata:
        As :meth:`repro.core.Thicket.from_caliperreader`.
    validate:
        Run full schema validation before graph construction
        (disable only for trusted, already-validated payloads).
    max_retries / retry_base_delay:
        Bounded exponential backoff for transient ``OSError`` while
        reading profile files.
    sleep:
        Injectable sleep function (testing); defaults to ``time.sleep``.
    checkpoint:
        Directory for a crash-tolerant ingestion checkpoint (created
        if missing).  Per-profile outcomes are journaled there as the
        run progresses, and a re-run with the same directory resumes
        from the journal instead of re-reading finished profiles.

    Returns
    -------
    IngestResult
        ``(thicket, report)``; ``thicket`` is ``None`` when nothing
        was loadable under a non-strict policy.
    """
    from ..core.thicket import Thicket

    if on_error not in ERROR_POLICIES:
        # API-argument validation, not a profile failure: the caller
        # passed a bad policy name, so ValueError is the right contract
        raise ValueError(  # repro: noqa[RPR002]
            f"on_error must be one of {ERROR_POLICIES}, got {on_error!r}")
    if sleep is None:
        sleep = time.sleep
    if isinstance(sources, (str, Path, GraphFrame, Mapping)):
        sources = [sources]
    sources = list(sources)
    report = IngestReport(policy=on_error, requested=len(sources))
    if not sources:
        raise CompositionError("no profiles given")

    ckpt = None
    if checkpoint is not None:
        from .checkpoint import CheckpointJournal

        ckpt = CheckpointJournal(checkpoint)
        report.checkpoint_path = str(Path(checkpoint))

    timings = report.stage_seconds
    try:
        with obs_span("ingest.load_ensemble", profiles=len(sources),
                      policy=on_error) as top:
            logger.info("ingesting %d profile(s) (policy=%s, validate=%s)",
                        len(sources), on_error, validate)
            gfs: list[GraphFrame] = []
            labelled: list[tuple[int, str]] = []
            for idx, src in enumerate(sources):
                source = _source_label(src, idx)
                if ckpt is not None:
                    rec = ckpt.get(source)
                    if rec is not None:
                        if rec.get("status") == "ok":
                            with _timed(timings, "resume"), \
                                    obs_span("ingest.checkpoint.load",
                                             source=source):
                                gf = ckpt.load_gf(rec)
                            if gf is not None:
                                obs_counter("ingest.checkpoint.resumed")
                                report.resumed.append(source)
                                gfs.append(gf)
                                labelled.append((idx, source))
                                continue
                            # payload lost/corrupt: fall through, re-ingest
                        elif on_error != "strict":
                            _resume_quarantined(rec, source, idx, on_error,
                                                report)
                            continue
                        # strict + previously quarantined: retry the source
                try:
                    with obs_span("ingest.profile", source=source):
                        gf = _load_one(src, idx, validate, max_retries,
                                       retry_base_delay, sleep, timings)
                except ReproError as e:
                    if ckpt is not None:
                        ckpt.record_quarantined(source, e.stage,
                                                type(e).__name__, str(e))
                    if on_error == "strict":
                        raise
                    if on_error == "skip":
                        warnings.warn(f"skipping profile: {e}", stacklevel=2)
                    logger.warning("quarantined profile %s [%s]: %s: %s",
                                   source, e.stage, type(e).__name__, e)
                    obs_counter("ingest.profiles.quarantined")
                    report.quarantined.append(
                        QuarantinedProfile(source=source, stage=e.stage,
                                           error=e, index=idx))
                    continue
                if ckpt is not None:
                    with _timed(timings, "checkpoint"), \
                            obs_span("ingest.checkpoint.record",
                                     source=source):
                        ckpt.record_ok(source, gf)
                gfs.append(gf)
                labelled.append((idx, source))
            obs_counter("ingest.profiles.loaded", len(gfs))

            with _timed(timings, "compose"), obs_span("ingest.derive_ids"):
                gfs, labelled, profile_ids = _derive_profile_ids(
                    gfs, labelled, metadata_key, on_error, report)

            report.loaded = [source for _, source in labelled]
            if not gfs:
                if on_error == "strict":
                    raise CompositionError("no profiles could be loaded")
                logger.error("nothing loadable: all %d profile(s) "
                             "quarantined", len(sources))
                return IngestResult(None, report)

            provenance = {
                "ingest_policy": on_error,
                "dropped_profiles": [
                    {"source": q.source, "stage": q.stage,
                     "error_type": q.error_type, "error": str(q.error)}
                    for q in report.quarantined
                ],
                "repaired_profile_ids": [
                    {"source": r.source, "original": r.original,
                     "repaired": r.repaired}
                    for r in report.repaired
                ],
            }
            with _timed(timings, "compose"), obs_span("ingest.compose",
                                                      profiles=len(gfs)):
                tk = Thicket._compose(gfs, profile_ids,
                                      intersection=intersection,
                                      fill_perfdata=fill_perfdata,
                                      provenance=provenance)
            top.set("loaded", len(gfs))
            top.set("quarantined", report.n_quarantined)
            if report.resumed or report.resumed_quarantined:
                top.set("resumed", report.n_resumed)
                logger.info("checkpoint resume: %d profile(s) rebuilt from "
                            "journal, %d quarantine(s) skipped",
                            report.n_resumed, report.resumed_quarantined)
            if report.quarantined:
                logger.info("ingest finished: %d/%d loaded, %d quarantined",
                            report.n_loaded, report.requested,
                            report.n_quarantined)
    finally:
        if ckpt is not None:
            ckpt.close()
    return IngestResult(tk, report)
