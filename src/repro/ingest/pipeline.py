"""Fault-tolerant ensemble ingestion (read → validate → build → compose).

``load_ensemble`` is the campaign-scale loading path: where
``Thicket.from_caliperreader`` historically aborted a 1,900-profile
composition on the first truncated file, this pipeline pushes every
profile through four stages and applies a per-profile *error policy*:

``strict``
    Raise the first typed error (:class:`repro.errors.ReproError`
    subclass naming the offending file and stage).  The default, and
    the old behaviour — minus the raw ``KeyError``.
``skip``
    Drop bad profiles, emitting a ``warnings.warn`` per drop, and
    compose the rest.
``collect``
    Drop bad profiles silently and return a structured
    :class:`IngestReport` attributing every quarantined profile to its
    exception, stage, and source.

Transient I/O errors (``OSError`` other than a missing file) are
retried with bounded exponential backoff before the profile is given
up on.  Colliding profile ids are repaired deterministically under
``skip``/``collect`` (and recorded in the report) instead of aborting
the whole ensemble.

With ``checkpoint=DIR`` every per-profile outcome is additionally
journaled to a crash-tolerant JSONL file plus incrementally saved
GraphFrame payloads (:mod:`repro.ingest.checkpoint`); a re-run after
an interruption resumes from the journal, skipping already-ingested
and already-quarantined profiles.  Resume counts surface in the
:class:`IngestReport` and the ``ingest.checkpoint.*`` obs counters.
A checkpointed run installs a :class:`~repro.resilience.SignalGuard`
so SIGINT/SIGTERM can never tear an in-flight journal record.

With a supervised :class:`~repro.resilience.ResiliencePolicy`
(``policy=ResiliencePolicy(jobs=4, task_timeout=5)``) the read →
validate → build stages fan out across a
:class:`~repro.resilience.SupervisedExecutor` worker pool — per-task
wall-clock deadlines kill hung readers, crashed workers are replaced
and their profiles quarantined as typed
:class:`~repro.errors.ExecutionError`\\ s, a per-directory circuit
breaker converts repeated source failures into fast quarantines — and
results fold back in input order, so composition (which stays on the
main process) is byte-identical to a serial run.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import time
import warnings
from contextlib import ExitStack, contextmanager, nullcontext
from pathlib import Path
from typing import Any, Iterable, Mapping

import numpy as np

from ..errors import (
    CompositionError,
    ProfileConflictError,
    ReaderError,
    ReproError,
    SchemaError,
    WorkerCrashError,
)
from ..graph import GraphFrame
from ..obs import counter as obs_counter
from ..obs import span as obs_span
from ..readers.caliper import read_cali_dict
from ..resilience import (
    ResiliencePolicy,
    SignalGuard,
    SupervisedExecutor,
    in_worker,
)
from .report import (
    IngestReport,
    IngestResult,
    QuarantinedProfile,
    RepairedProfileId,
)
from .schema import validate_cali_payload

__all__ = ["load_ensemble", "ERROR_POLICIES", "FAULT_KEY"]

ERROR_POLICIES = ("strict", "skip", "collect")

logger = logging.getLogger("repro.ingest")


@contextmanager
def _timed(timings: dict[str, float], stage: str):
    """Accumulate wall seconds for *stage*; always on (two clock reads
    per stage are noise next to JSON parsing), independent of whether
    span tracing is enabled."""
    t0 = time.perf_counter()
    try:
        yield
    finally:
        timings[stage] = (timings.get(stage, 0.0)
                          + time.perf_counter() - t0)


def _read_text(path: Path) -> str:
    """Read a profile file; module-level so tests can inject faults."""
    return path.read_text()


# ----------------------------------------------------------------------
# deterministic execution-fault injection (workloads.corrupt_campaign)
# ----------------------------------------------------------------------

#: Top-level payload key that marks an injected execution fault.  A
#: payload carrying it is never a valid cali profile, so honouring the
#: sentinel only changes *how* a already-doomed profile fails — which
#: is exactly what makes timeout/heartbeat/breaker paths testable
#: without real flaky hardware.
FAULT_KEY = "__repro_fault__"


def _trip_fault(payload: Any, source: str, sleep) -> Any:
    """Execute an injected fault sentinel, if *payload* carries one.

    ``slow_io`` sleeps then yields the embedded real payload;
    ``slowdown`` burns CPU for the configured seconds then yields it
    (a *compute* regression rather than an I/O stall — the perf
    sentinel's staged fault); ``hang`` sleeps past any sane timeout
    then fails; ``worker_crash`` kills the worker process outright
    (simulated as a typed error when running inline on the main
    process, which must never die).
    """
    if not isinstance(payload, Mapping) or FAULT_KEY not in payload:
        return payload
    fault = payload[FAULT_KEY]
    mode = fault.get("mode") if isinstance(fault, Mapping) else None
    if mode == "slow_io":
        sleep(float(fault.get("seconds", 0.05)))
        return payload.get("payload", {})  # the wrapped real profile
    if mode == "slowdown":
        seconds = float(fault.get("seconds", 0.25))
        t0 = time.perf_counter()
        while time.perf_counter() - t0 < seconds:
            sum(range(1000))  # busy-burn: wall AND cpu time inflate
        return payload.get("payload", {})
    if mode == "hang":
        seconds = float(fault.get("seconds", 30.0))
        sleep(seconds)
        raise ReaderError(
            f"injected hang in {source} woke after {seconds}s",
            source=source)
    if mode == "worker_crash":
        if in_worker():
            os._exit(3)
        raise WorkerCrashError(
            f"injected worker crash in {source} (simulated in-process)",
            source=source)
    raise SchemaError(f"unknown injected fault mode {mode!r} in {source}",
                      source=source)


# ----------------------------------------------------------------------
# the worker-side task: read → validate → build, one profile
# ----------------------------------------------------------------------

def _parallel_ingest_task(spec: tuple[str, bool]) -> dict:
    """Run one profile path through read → validate → build in a worker.

    Returns the GraphFrame serialized as a checkpoint payload dict
    (:func:`repro.ingest.checkpoint._gf_to_payload`) — a picklable,
    losslessly round-trippable form — rather than the GraphFrame
    itself, so parallel composition is byte-identical to serial.
    Transient I/O errors are re-raised as ``ReaderError`` with
    ``transient=True``; the supervisor owns the retry/backoff budget.
    """
    from .checkpoint import _gf_to_payload

    path_str, validate = spec
    path = Path(path_str)
    try:
        text = _read_text(path)
    except FileNotFoundError as e:
        raise ReaderError(f"profile file not found: {path}",
                          source=path) from e
    except OSError as e:
        err = ReaderError(f"I/O error reading {path}: {e}", source=path)
        err.transient = True  # supervisor may retry with backoff
        raise err from e
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as e:
        raise ReaderError(f"invalid JSON in {path_str}: {e}",
                          source=path_str) from e
    payload = _trip_fault(payload, path_str, time.sleep)
    if validate:
        validate_cali_payload(payload, source=path_str)
    try:
        gf = read_cali_dict(payload, source=path_str)
    except ReproError:
        raise
    except (KeyError, IndexError, TypeError, ValueError,
            AttributeError) as e:
        raise ReaderError(
            f"failed to build call tree from {path_str}: "
            f"{type(e).__name__}: {e}", source=path_str,
            stage="build") from e
    gf.metadata.setdefault("profile.file", path_str)
    return _gf_to_payload(gf)


def _read_with_retry(path: Path, max_retries: int, base_delay: float,
                     sleep) -> str:
    """Read *path*, retrying transient ``OSError`` with backoff.

    A missing file is permanent and is never retried.
    """
    attempt = 0
    while True:
        try:
            return _read_text(path)
        except FileNotFoundError as e:
            raise ReaderError(f"profile file not found: {path}",
                              source=path) from e
        except OSError as e:
            if attempt >= max_retries:
                logger.error(
                    "giving up on %s after %d attempt(s): %s",
                    path, attempt + 1, e)
                raise ReaderError(
                    f"I/O error reading {path} after {attempt + 1} "
                    f"attempt(s): {e}", source=path) from e
            delay = base_delay * (2 ** attempt)
            logger.warning(
                "transient I/O error reading %s (attempt %d/%d): %s; "
                "retrying in %.3fs", path, attempt + 1, max_retries + 1,
                e, delay)
            obs_counter("ingest.read.retries")
            sleep(delay)
            attempt += 1


def _source_label(src: Any, index: int) -> str:
    if isinstance(src, GraphFrame):
        return str(src.metadata.get("profile.file",
                                    f"<graphframe #{index}>"))
    if isinstance(src, Mapping):
        return f"<payload #{index}>"
    return str(src)


def _load_one(src: Any, index: int, validate: bool, max_retries: int,
              base_delay: float, sleep,
              timings: dict[str, float]) -> GraphFrame:
    """Run one source through read → validate → build.

    Raises only :class:`ReproError` subclasses.  Per-stage wall time
    accumulates into *timings* (keys ``read``/``validate``/``build``).
    """
    if isinstance(src, GraphFrame):
        return src

    source = _source_label(src, index)
    if isinstance(src, Mapping):
        payload: Any = src
    else:
        with _timed(timings, "read"), obs_span("ingest.read",
                                               source=source):
            text = _read_with_retry(Path(src), max_retries, base_delay,
                                    sleep)
            try:
                payload = json.loads(text)
            except json.JSONDecodeError as e:
                raise ReaderError(f"invalid JSON in {source}: {e}",
                                  source=source) from e

    payload = _trip_fault(payload, source, sleep)
    if validate:
        with _timed(timings, "validate"), obs_span("ingest.validate",
                                                   source=source):
            validate_cali_payload(payload, source=source)
    with _timed(timings, "build"), obs_span("ingest.build", source=source):
        try:
            gf = read_cali_dict(payload, source=source)
        except ReproError:
            raise
        except (KeyError, IndexError, TypeError, ValueError,
                AttributeError) as e:
            # belt and braces: nothing structural may escape untyped
            raise ReaderError(
                f"failed to build call tree from {source}: "
                f"{type(e).__name__}: {e}", source=source,
                stage="build") from e
    if not isinstance(src, (GraphFrame, Mapping)):
        gf.metadata.setdefault("profile.file", str(src))
    return gf


def _repair_id(pid: Any, occurrence: int) -> Any:
    """Deterministic replacement id for the *occurrence*-th collision."""
    if isinstance(pid, (int, np.integer)) and not isinstance(pid, bool):
        digest = hashlib.sha256(f"{pid}:{occurrence}".encode()).digest()
        return int.from_bytes(digest[:8], "big", signed=True)
    return f"{pid}#{occurrence}"


def _derive_profile_ids(gfs, sources, metadata_key, on_error, report):
    """Profile id per GraphFrame; collisions repaired or raised.

    Returns ``(kept_gfs, kept_sources, profile_ids)`` — under non-strict
    policies a profile whose id cannot be derived is quarantined here
    (stage ``compose``) rather than aborting the ensemble.
    """
    from ..core.thicket import profile_hash

    kept_gfs, kept_sources, ids = [], [], []
    for (idx, source), gf in zip(sources, gfs):
        try:
            if metadata_key is not None:
                if metadata_key not in gf.metadata:
                    raise ProfileConflictError(
                        f"metadata_key {metadata_key!r} missing from "
                        f"profile #{idx} ({source})", source=source)
                pid = gf.metadata[metadata_key]
            else:
                pid = profile_hash(gf.metadata)
        except ReproError as e:
            if on_error == "strict":
                raise
            if on_error == "skip":
                warnings.warn(f"skipping profile: {e}", stacklevel=3)
            logger.warning("quarantined profile %s [compose]: %s: %s",
                           source, type(e).__name__, e)
            obs_counter("ingest.profiles.quarantined")
            report.quarantined.append(
                QuarantinedProfile(source=source, stage=e.stage,
                                   error=e, index=idx))
            continue
        kept_gfs.append(gf)
        kept_sources.append((idx, source))
        ids.append(pid)

    seen: dict[Any, int] = {}
    final_ids = []
    for (idx, source), pid in zip(kept_sources, ids):
        if pid in seen:
            if on_error == "strict":
                first = kept_sources[seen[pid]][1]
                raise ProfileConflictError(
                    f"profile id {pid!r} of {source} collides with "
                    f"{first}; choose a different metadata_key or use "
                    f"on_error='skip'/'collect'", source=source)
            occurrence = 1
            new = _repair_id(pid, occurrence)
            while new in seen or new in ids:
                occurrence += 1
                new = _repair_id(pid, occurrence)
            logger.warning("profile id %r of %s collided; repaired to %r",
                           pid, source, new)
            obs_counter("ingest.profile_ids.repaired")
            report.repaired.append(
                RepairedProfileId(source=source, original=pid, repaired=new))
            pid = new
        seen[pid] = len(final_ids)
        final_ids.append(pid)
    return kept_gfs, kept_sources, final_ids


def _resume_quarantined(rec: Mapping, source: str, idx: int,
                        on_error: str, report) -> None:
    """Re-attribute a journaled quarantine without re-reading the file."""
    import repro.errors as errors_mod

    err_cls = getattr(errors_mod, rec.get("error_type", ""), ReproError)
    if not (isinstance(err_cls, type) and issubclass(err_cls, ReproError)):
        err_cls = ReproError
    error = err_cls(str(rec.get("error", "quarantined in a previous run")),
                    source=source, stage=rec.get("stage", "ingest"))
    if on_error == "skip":
        warnings.warn(f"skipping profile (from checkpoint): {error}",
                      stacklevel=3)
    logger.info("checkpoint: skipping previously quarantined profile %s "
                "[%s]", source, error.stage)
    obs_counter("ingest.checkpoint.quarantine_skipped")
    obs_counter("ingest.profiles.quarantined")
    report.resumed_quarantined += 1
    report.quarantined.append(
        QuarantinedProfile(source=source, stage=error.stage, error=error,
                           index=idx))


def _quarantine(report: IngestReport, source: str, idx: int,
                e: ReproError, on_error: str, ckpt, crit) -> None:
    """Shared quarantine bookkeeping: journal, warn, log, report."""
    if ckpt is not None:
        with crit():
            ckpt.record_quarantined(source, e.stage, type(e).__name__,
                                    str(e))
    if on_error == "skip":
        warnings.warn(f"skipping profile: {e}", stacklevel=3)
    logger.warning("quarantined profile %s [%s]: %s: %s",
                   source, e.stage, type(e).__name__, e)
    obs_counter("ingest.profiles.quarantined")
    report.quarantined.append(
        QuarantinedProfile(source=source, stage=e.stage, error=e,
                           index=idx))


def _try_resume(ckpt, source: str, idx: int, on_error: str, report,
                timings) -> tuple[bool, GraphFrame | None]:
    """Consult the checkpoint journal for *source*.

    Returns ``(handled, gf)``: ``(True, gf)`` for a resumed profile,
    ``(True, None)`` for a skipped quarantine, ``(False, None)`` when
    the source must be (re-)ingested.
    """
    rec = ckpt.get(source)
    if rec is None:
        return False, None
    if rec.get("status") == "ok":
        with _timed(timings, "resume"), \
                obs_span("ingest.checkpoint.load", source=source):
            gf = ckpt.load_gf(rec)
        if gf is not None:
            obs_counter("ingest.checkpoint.resumed")
            report.resumed.append(source)
            return True, gf
        return False, None  # payload lost/corrupt: re-ingest
    if on_error != "strict":
        _resume_quarantined(rec, source, idx, on_error, report)
        return True, None
    return False, None  # strict + previously quarantined: retry


def _count_execution_failure(report: IngestReport, status: str) -> None:
    """Fold one executor failure status into the report's counters."""
    if status in ("timeout", "deadline"):
        report.timeouts += 1
    elif status == "crash":
        report.worker_crashes += 1


def _load_parallel(tasks, policy: ResiliencePolicy, validate: bool,
                   on_error: str, report: IngestReport, ckpt, crit,
                   sleep, timings,
                   slots: dict[int, GraphFrame]) -> None:
    """Fan *tasks* (``(idx, path)`` pairs) out across a supervised pool.

    Successful profiles land in *slots* (keyed by input index, so the
    caller reassembles input order); failures are quarantined exactly
    as the serial path would, with executor failures (timeout, crash,
    breaker, deadline) additionally counted on the report.  Under
    ``strict`` the lowest-index error is raised — after every outcome
    has been journaled, so a checkpointed re-run still resumes.
    """
    from .checkpoint import _payload_to_gf

    paths = [path for _, path in tasks]
    executor = SupervisedExecutor(
        policy, breaker_key=lambda key: str(Path(key).parent),
        sleep=sleep)
    with _timed(timings, "execute"), \
            obs_span("ingest.parallel", tasks=len(tasks),
                     jobs=policy.jobs):
        outcomes = executor.map(_parallel_ingest_task,
                                [(p, validate) for p in paths],
                                keys=paths)
    report.breaker_trips += executor.breaker.trips
    first_error: ReproError | None = None
    for (idx, source), outcome in zip(tasks, outcomes):
        if outcome.ok:
            gf = _payload_to_gf(outcome.value)
            if ckpt is not None:
                with _timed(timings, "checkpoint"), crit(), \
                        obs_span("ingest.checkpoint.record",
                                 source=source):
                    ckpt.record_ok(source, gf)
            slots[idx] = gf
            continue
        _count_execution_failure(report, outcome.status)
        if on_error == "strict":
            # journal every failure before raising so a checkpointed
            # re-run can still resume past this point
            if ckpt is not None:
                with crit():
                    ckpt.record_quarantined(
                        source, outcome.error.stage,
                        type(outcome.error).__name__, str(outcome.error))
            if first_error is None:
                first_error = outcome.error
            continue
        _quarantine(report, source, idx, outcome.error, on_error, ckpt,
                    crit)
    if first_error is not None:
        raise first_error


def load_ensemble(sources: Iterable[Any] | Any,
                  on_error: str = "strict",
                  metadata_key: str | None = None,
                  intersection: bool = False,
                  fill_perfdata: bool = False,
                  validate: bool = True,
                  max_retries: int = 2,
                  retry_base_delay: float = 0.05,
                  sleep=None,
                  checkpoint: Any = None,
                  policy: ResiliencePolicy | None = None) -> IngestResult:
    """Compose an ensemble of cali-JSON profiles fault-tolerantly.

    Parameters
    ----------
    sources:
        File paths, payload dicts, and/or GraphFrames (mixed is fine).
    on_error:
        ``"strict"`` (raise first error), ``"skip"`` (drop + warn), or
        ``"collect"`` (drop silently, attribute in the report).
    metadata_key / intersection / fill_perfdata:
        As :meth:`repro.core.Thicket.from_caliperreader`.
    validate:
        Run full schema validation before graph construction
        (disable only for trusted, already-validated payloads).
    max_retries / retry_base_delay:
        Bounded exponential backoff for transient ``OSError`` while
        reading profile files.  Ignored when *policy* is given —
        ``policy.max_retries`` / ``policy.backoff`` take over.
    sleep:
        Injectable sleep function (testing); defaults to ``time.sleep``.
    checkpoint:
        Directory for a crash-tolerant ingestion checkpoint (created
        if missing).  Per-profile outcomes are journaled there as the
        run progresses, and a re-run with the same directory resumes
        from the journal instead of re-reading finished profiles.
        Checkpointed runs defer SIGINT/SIGTERM across journal writes
        so an interrupt can never tear an in-flight record.
    policy:
        A :class:`~repro.resilience.ResiliencePolicy`.  A *supervised*
        policy (``jobs > 1``, or a ``task_timeout`` / ``deadline``)
        fans the per-profile read → validate → build stages out across
        a :class:`~repro.resilience.SupervisedExecutor` worker pool
        with per-task deadlines, heartbeat liveness, and per-directory
        circuit breakers; composition stays on the main process and
        results keep input order.  The default (``None``, like
        ``jobs=1``) preserves the historical serial behaviour exactly.

    Returns
    -------
    IngestResult
        ``(thicket, report)``; ``thicket`` is ``None`` when nothing
        was loadable under a non-strict policy.
    """
    from ..core.thicket import Thicket

    if on_error not in ERROR_POLICIES:
        # CompositionError subclasses ValueError, so the historical
        # bad-argument contract holds while staying a typed ReproError
        raise CompositionError(
            f"on_error must be one of {ERROR_POLICIES}, got {on_error!r}")
    if sleep is None:
        sleep = time.sleep
    eff = policy if policy is not None else ResiliencePolicy(
        max_retries=max_retries, backoff=retry_base_delay)
    if isinstance(sources, (str, Path, GraphFrame, Mapping)):
        sources = [sources]
    sources = list(sources)
    report = IngestReport(policy=on_error, requested=len(sources),
                          jobs=eff.jobs)
    if not sources:
        raise CompositionError("no profiles given")

    ckpt = None
    guard: SignalGuard | None = None
    timings = report.stage_seconds
    with ExitStack() as stack:
        if checkpoint is not None:
            from .checkpoint import CheckpointJournal

            # the guard makes journal appends and worker teardown
            # uninterruptible windows; outside them Ctrl-C is instant
            guard = stack.enter_context(SignalGuard())
            ckpt = CheckpointJournal(checkpoint)
            report.checkpoint_path = str(Path(checkpoint))

        def crit():
            return guard.critical() if guard is not None else nullcontext()

        try:
            with obs_span("ingest.load_ensemble", profiles=len(sources),
                          policy=on_error, jobs=eff.jobs) as top:
                logger.info(
                    "ingesting %d profile(s) (policy=%s, validate=%s, "
                    "jobs=%d)", len(sources), on_error, validate, eff.jobs)
                slots: dict[int, GraphFrame] = {}
                tasks: list[tuple[int, str]] = []   # parallelizable paths
                for idx, src in enumerate(sources):
                    source = _source_label(src, idx)
                    if ckpt is not None:
                        handled, gf = _try_resume(ckpt, source, idx,
                                                  on_error, report, timings)
                        if handled:
                            if gf is not None:
                                slots[idx] = gf
                            continue
                    if eff.supervised and not isinstance(
                            src, (GraphFrame, Mapping)):
                        tasks.append((idx, str(src)))
                        continue
                    try:
                        with obs_span("ingest.profile", source=source):
                            gf = _load_one(src, idx, validate,
                                           eff.max_retries, eff.backoff,
                                           sleep, timings)
                    except ReproError as e:
                        if on_error == "strict":
                            if ckpt is not None:
                                with crit():
                                    ckpt.record_quarantined(
                                        source, e.stage,
                                        type(e).__name__, str(e))
                            raise
                        _quarantine(report, source, idx, e, on_error,
                                    ckpt, crit)
                        continue
                    if ckpt is not None:
                        with _timed(timings, "checkpoint"), crit(), \
                                obs_span("ingest.checkpoint.record",
                                         source=source):
                            ckpt.record_ok(source, gf)
                    slots[idx] = gf
                if tasks:
                    _load_parallel(tasks, eff, validate, on_error,
                                   report, ckpt, crit, sleep, timings,
                                   slots)
                gfs = [slots[i] for i in sorted(slots)]
                labelled = [(i, _source_label(sources[i], i))
                            for i in sorted(slots)]
                obs_counter("ingest.profiles.loaded", len(gfs))

                with _timed(timings, "compose"), \
                        obs_span("ingest.derive_ids"):
                    gfs, labelled, profile_ids = _derive_profile_ids(
                        gfs, labelled, metadata_key, on_error, report)

                report.loaded = [source for _, source in labelled]
                if not gfs:
                    if on_error == "strict":
                        raise CompositionError(
                            "no profiles could be loaded")
                    logger.error("nothing loadable: all %d profile(s) "
                                 "quarantined", len(sources))
                    return IngestResult(None, report)

                provenance = {
                    "ingest_policy": on_error,
                    "dropped_profiles": [
                        {"source": q.source, "stage": q.stage,
                         "error_type": q.error_type, "error": str(q.error)}
                        for q in report.quarantined
                    ],
                    "repaired_profile_ids": [
                        {"source": r.source, "original": r.original,
                         "repaired": r.repaired}
                        for r in report.repaired
                    ],
                }
                with _timed(timings, "compose"), \
                        obs_span("ingest.compose", profiles=len(gfs)):
                    tk = Thicket._compose(gfs, profile_ids,
                                          intersection=intersection,
                                          fill_perfdata=fill_perfdata,
                                          provenance=provenance)
                top.set("loaded", len(gfs))
                top.set("quarantined", report.n_quarantined)
                if report.resumed or report.resumed_quarantined:
                    top.set("resumed", report.n_resumed)
                    logger.info("checkpoint resume: %d profile(s) rebuilt "
                                "from journal, %d quarantine(s) skipped",
                                report.n_resumed,
                                report.resumed_quarantined)
                if report.quarantined:
                    logger.info("ingest finished: %d/%d loaded, "
                                "%d quarantined", report.n_loaded,
                                report.requested, report.n_quarantined)
        finally:
            if ckpt is not None:
                with crit():
                    ckpt.close()
    return IngestResult(tk, report)
