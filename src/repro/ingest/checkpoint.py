"""Crash-tolerant ingestion checkpoints: resume instead of re-read.

``load_ensemble(..., checkpoint=DIR)`` records every per-profile
outcome in an append-only JSONL *journal* plus one incrementally saved
GraphFrame payload per successful profile.  A re-run after a crash (or
a deliberate interruption) resumes from the journal: already-ingested
profiles are rebuilt from their saved payloads (no re-read, no
re-validate of the raw file) and already-quarantined profiles are
skipped outright.

Crash tolerance of the journal itself:

* every record line carries a CRC-32 of its canonical encoding, so a
  torn write is detectable;
* on reopen, the longest valid prefix wins — a truncated or garbled
  tail (the only corruption an append-only crash can produce) is
  tolerated and *repaired* by truncating the file back to the last
  good record, surfaced via the ``ingest.checkpoint.repaired_tail``
  counter;
* record appends are flushed and fsynced one by one, so at most the
  profile in flight is lost.

Layout of a checkpoint directory::

    <dir>/journal.jsonl            one header + one record per profile
    <dir>/profiles/<sha256[:24]>.json   saved GraphFrame payloads
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from pathlib import Path
from typing import Any

import numpy as np

from ..errors import PersistenceError
from ..graph import GraphFrame
from ..ioutil import atomic_write_text, canonical_json, crc32_of, fsync_path
from ..obs import counter as obs_counter
from ..obs import span as obs_span

__all__ = ["CheckpointJournal", "JOURNAL_FORMAT", "PAYLOAD_FORMAT"]

JOURNAL_FORMAT = "repro-journal-v1"
PAYLOAD_FORMAT = "repro-gf-v1"

logger = logging.getLogger("repro.ingest.checkpoint")


# ----------------------------------------------------------------------
# GraphFrame <-> JSON payload
# ----------------------------------------------------------------------

def _jsonable(v: Any) -> Any:
    if hasattr(v, "item"):
        v = v.item()
    if isinstance(v, float) and np.isnan(v):
        return None
    return v


def _gf_to_payload(gf: GraphFrame) -> dict:
    """Serialize a built GraphFrame losslessly.

    Same positional-node-reference idiom as the thicket store: the
    graph as a nested literal, the node-indexed table with pre-order
    node positions, and explicit float-column marks so NaN cells
    (stored as ``null``) round-trip as ``np.nan``.
    """
    node_pos = {n: i for i, n in enumerate(gf.graph.node_order())}
    df = gf.dataframe
    return {
        "format": PAYLOAD_FORMAT,
        "graph": gf.graph.to_literal(),
        "rows": [node_pos[n] for n in df.index.values],
        "columns": list(df.columns),
        "float_columns": [c for c in df.columns
                          if df.column(c).dtype.kind == "f"],
        "data": [[_jsonable(df.column(c)[i]) for c in df.columns]
                 for i in range(len(df))],
        "metadata": {str(k): _jsonable(v) for k, v in gf.metadata.items()},
        "exc_metrics": list(gf.exc_metrics),
        "inc_metrics": list(gf.inc_metrics),
        "default_metric": gf.default_metric,
    }


def _payload_to_gf(payload: dict) -> GraphFrame:
    from ..frame import DataFrame, Index
    from ..graph import Graph

    if payload.get("format") != PAYLOAD_FORMAT:
        raise PersistenceError(
            f"not a checkpoint GraphFrame payload "
            f"(format={payload.get('format')!r})", stage="journal")
    graph = Graph.from_literal(payload["graph"])
    nodes = graph.node_order()
    columns = payload["columns"]
    float_cols = set(payload.get("float_columns", []))
    data = payload["data"]
    cols = {}
    for j, c in enumerate(columns):
        values = [row[j] for row in data]
        if c in float_cols:
            values = [np.nan if v is None else float(v) for v in values]
        cols[c] = values
    df = DataFrame(cols,
                   index=Index([nodes[i] for i in payload["rows"]],
                               name="node"),
                   columns=columns)
    return GraphFrame(graph, df, metadata=dict(payload.get("metadata", {})),
                      exc_metrics=list(payload.get("exc_metrics", [])),
                      inc_metrics=list(payload.get("inc_metrics", [])),
                      default_metric=payload.get("default_metric"))


# ----------------------------------------------------------------------
# the journal
# ----------------------------------------------------------------------

def _encode_record(record: dict) -> str:
    body = dict(record)
    body["crc"] = crc32_of(canonical_json(record))
    return canonical_json(body)


def _decode_record(line: str) -> dict | None:
    """Record dict, or None when the line is torn / fails its CRC."""
    try:
        body = json.loads(line)
    except json.JSONDecodeError:
        return None
    if not isinstance(body, dict) or "crc" not in body:
        return None
    crc = body.pop("crc")
    if crc != crc32_of(canonical_json(body)):
        return None
    return body


class CheckpointJournal:
    """Per-profile outcome journal backing ``load_ensemble(checkpoint=)``.

    Opening the journal replays (and, when needed, tail-repairs) the
    JSONL file; :meth:`get` answers "what happened to this source last
    run", and :meth:`record_ok` / :meth:`record_quarantined` append
    durable outcome records as the current run progresses.
    """

    def __init__(self, directory: str | Path):
        self.directory = Path(directory)
        self.journal_path = self.directory / "journal.jsonl"
        self.profiles_dir = self.directory / "profiles"
        self.records: dict[str, dict] = {}
        self.repaired_tail_lines = 0
        try:
            self.profiles_dir.mkdir(parents=True, exist_ok=True)
        except OSError as e:
            raise PersistenceError(
                f"cannot create checkpoint directory: {e}",
                source=self.directory, stage="journal") from e
        with obs_span("ingest.checkpoint.open", path=str(self.directory)):
            self._replay()
        self._fh = open(self.journal_path, "a", encoding="utf-8")
        if not self.records and self._fh.tell() == 0:
            self._append({"kind": "begin", "format": JOURNAL_FORMAT})

    # -- replay / repair ------------------------------------------------
    def _replay(self) -> None:
        if not self.journal_path.exists():
            return
        raw = self.journal_path.read_bytes()
        lines = raw.decode("utf-8", errors="replace").split("\n")
        good_bytes = 0
        good_lines: list[str] = []
        bad_seen = False
        for line in lines:
            if line == "":
                continue
            record = _decode_record(line)
            if record is None:
                bad_seen = True
                self.repaired_tail_lines += 1
                continue
            if bad_seen:
                # a valid record after a torn one: everything from the
                # first bad line onward is untrusted, drop it too
                self.repaired_tail_lines += 1
                continue
            good_lines.append(line)
            good_bytes = sum(len(g.encode("utf-8")) + 1 for g in good_lines)
            self._ingest_record(record)
        if good_lines and good_lines[0] != "":
            first = _decode_record(good_lines[0])
            if first and first.get("kind") == "begin" \
                    and first.get("format") != JOURNAL_FORMAT:
                raise PersistenceError(
                    f"checkpoint journal has unsupported format "
                    f"{first.get('format')!r} (expected {JOURNAL_FORMAT!r})",
                    source=self.journal_path, stage="journal")
        if self.repaired_tail_lines:
            logger.warning(
                "checkpoint journal %s: dropped %d torn/invalid trailing "
                "line(s), truncating back to last good record",
                self.journal_path, self.repaired_tail_lines)
            obs_counter("ingest.checkpoint.repaired_tail",
                        self.repaired_tail_lines)
            with open(self.journal_path, "r+b") as fh:
                fh.truncate(good_bytes)
                fh.flush()
                os.fsync(fh.fileno())

    def _ingest_record(self, record: dict) -> None:
        if record.get("kind") == "profile" and "key" in record:
            self.records[record["key"]] = record

    # -- append ---------------------------------------------------------
    def _append(self, record: dict) -> None:
        try:
            self._fh.write(_encode_record(record) + "\n")
            self._fh.flush()
            os.fsync(self._fh.fileno())
        except OSError as e:
            raise PersistenceError(
                f"cannot append to checkpoint journal: {e}",
                source=self.journal_path, stage="journal") from e
        self._ingest_record(record)

    def get(self, key: str) -> dict | None:
        """The last recorded outcome for *key*, if any."""
        return self.records.get(key)

    def payload_path(self, key: str) -> Path:
        """Where *key*'s saved GraphFrame payload lives (content-hashed)."""
        digest = hashlib.sha256(key.encode("utf-8")).hexdigest()[:24]
        return self.profiles_dir / f"{digest}.json"

    def record_ok(self, key: str, gf: GraphFrame) -> None:
        """Durably record a successful ingest: payload first, then the
        journal line (so an ``ok`` record always has its payload)."""
        path = self.payload_path(key)
        # key order is semantic here: the metadata mapping must round-trip
        # in insertion order so a resumed profile composes byte-identically
        atomic_write_text(path, json.dumps(  # repro: noqa[RPR005]
            _gf_to_payload(gf), separators=(",", ":")))
        self._append({"kind": "profile", "key": key, "status": "ok",
                      "payload": path.name})
        obs_counter("ingest.checkpoint.recorded")

    def record_quarantined(self, key: str, stage: str, error_type: str,
                           error: str) -> None:
        """Durably record a failed ingest so a resume can skip it."""
        self._append({"kind": "profile", "key": key,
                      "status": "quarantined", "stage": stage,
                      "error_type": error_type, "error": error})
        obs_counter("ingest.checkpoint.recorded")

    def load_gf(self, record: dict) -> GraphFrame | None:
        """Rebuild the saved GraphFrame for an ``ok`` record.

        Returns ``None`` (caller re-ingests from the raw source) when
        the payload file is missing or unreadable — a checkpoint is a
        cache of work, never an additional way to lose it.
        """
        name = record.get("payload")
        path = self.profiles_dir / name if name else None
        if path is None or not path.exists():
            return None
        try:
            return _payload_to_gf(json.loads(path.read_text()))
        except (OSError, json.JSONDecodeError, PersistenceError, KeyError,
                TypeError, ValueError) as e:
            logger.warning(
                "checkpoint payload %s unreadable (%s: %s); re-ingesting",
                path, type(e).__name__, e)
            obs_counter("ingest.checkpoint.payload_invalid")
            return None

    def close(self) -> None:
        """Close the journal handle and fsync the checkpoint directory."""
        if not self._fh.closed:
            self._fh.close()
        fsync_path(self.directory)

    def __enter__(self) -> "CheckpointJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
