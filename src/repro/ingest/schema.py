"""Explicit schema validation for cali-JSON ("json-split") payloads.

The reader (:func:`repro.readers.read_cali_dict`) is deliberately
lenient — it checks only what it needs to build a tree.  This module is
the strict gate the ingestion pipeline runs *before* graph
construction, so a schema-drifted profile from a months-old campaign is
quarantined with a precise message instead of half-loading.

Checks, in order:

* required sections ``nodes``/``columns``/``data`` present and lists;
* ``columns`` entries are strings, ``column_metadata`` (if present)
  matches the column count;
* every node entry is an object with a ``label``; ``parent`` references
  point at an already-defined node (no forward/dangling references);
* every data row matches the column layout, its node-id cell is a
  valid node index, and value cells are numeric or null (wrong-typed
  cells such as a string where a metric belongs are rejected);
* no two data rows claim the same node (duplicate node ids would
  silently double rows on composition);
* NaN / ±inf metric values are *allowed* — they degrade to missing
  values in the NaN-aware statistics layer rather than failing a whole
  profile.
"""

from __future__ import annotations

import numbers
from typing import Any, Mapping

from ..errors import SchemaError

__all__ = ["validate_cali_payload", "REQUIRED_SECTIONS"]

REQUIRED_SECTIONS = ("nodes", "columns", "data")


def _fail(message: str, source: Any) -> None:
    raise SchemaError(message, source=source)


def validate_cali_payload(payload: Any, source: Any = None) -> None:
    """Raise :class:`SchemaError` unless *payload* is valid cali-JSON."""
    if not isinstance(payload, Mapping):
        _fail(f"payload must be a JSON object, got {type(payload).__name__}",
              source)

    missing = [s for s in REQUIRED_SECTIONS if s not in payload]
    if missing:
        _fail("missing required section(s) "
              + ", ".join(repr(s) for s in missing), source)

    nodes = payload["nodes"]
    columns = payload["columns"]
    data = payload["data"]
    for name, section in (("nodes", nodes), ("columns", columns),
                          ("data", data)):
        if not isinstance(section, (list, tuple)):
            _fail(f"section {name!r} must be a list, got "
                  f"{type(section).__name__}", source)

    for j, col in enumerate(columns):
        if not isinstance(col, str):
            _fail(f"column name {j} must be a string, got {col!r}", source)

    col_meta = payload.get("column_metadata")
    if col_meta is not None:
        if not isinstance(col_meta, (list, tuple)):
            _fail("'column_metadata' must be a list", source)
        if len(col_meta) != len(columns):
            _fail(f"'column_metadata' has {len(col_meta)} entries for "
                  f"{len(columns)} columns", source)
        for j, m in enumerate(col_meta):
            if not isinstance(m, Mapping):
                _fail(f"column_metadata entry {j} must be an object", source)

    for i, spec in enumerate(nodes):
        if not isinstance(spec, Mapping):
            _fail(f"node entry {i} must be an object", source)
        if "label" not in spec:
            _fail(f"node entry {i} has no 'label'", source)
        parent = spec.get("parent")
        if parent is not None:
            if isinstance(parent, bool) or not isinstance(parent, int):
                _fail(f"node entry {i} parent must be an integer node id, "
                      f"got {parent!r}", source)
            if not 0 <= parent < i:
                _fail(f"node entry {i} has dangling parent reference "
                      f"{parent} (must point at an earlier node)", source)

    try:
        path_pos = list(columns).index("path")
    except ValueError:
        path_pos = 0

    def is_value_col(j: int) -> bool:
        if j == path_pos:
            return False
        if col_meta is None:
            return True
        return bool(col_meta[j].get("is_value", True))

    seen_nodes: set[int] = set()
    for r, row in enumerate(data):
        if not isinstance(row, (list, tuple)):
            _fail(f"data row {r} must be a list", source)
        if len(row) != len(columns):
            _fail(f"data row {r} has {len(row)} cells for "
                  f"{len(columns)} columns", source)
        if columns:
            nid = row[path_pos]
            if isinstance(nid, bool) or not isinstance(nid, int):
                _fail(f"data row {r} node id must be an integer, "
                      f"got {nid!r}", source)
            if not 0 <= nid < len(nodes):
                _fail(f"data row {r} references unknown node id {nid} "
                      f"(profile has {len(nodes)} nodes)", source)
            if nid in seen_nodes:
                _fail(f"data row {r} duplicates node id {nid} — a node "
                      f"may appear at most once per profile", source)
            seen_nodes.add(nid)
        for j, cell in enumerate(row):
            if j == path_pos or not is_value_col(j):
                continue
            if cell is None or isinstance(cell, numbers.Number):
                continue  # NaN/inf floats included: handled by NaN-aware stats
            _fail(f"data row {r}, column {columns[j]!r}: metric cell must "
                  f"be numeric or null, got {cell!r}", source)

    globs = payload.get("globals")
    if globs is not None and not isinstance(globs, Mapping):
        _fail("'globals' must be an object of run metadata", source)
