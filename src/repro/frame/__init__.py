"""``repro.frame`` — the columnar DataFrame substrate (pandas substitute).

Public surface::

    from repro.frame import DataFrame, Series, Index, MultiIndex
    from repro.frame import concat_rows, concat_columns, merge, join_on_index
"""

from .concat import concat_columns, concat_rows
from .dataframe import DataFrame
from .index import Index, MultiIndex, RangeIndex, ensure_index
from .io import from_json, read_csv, to_csv, to_json
from .join import join_on_index, merge
from .ops import AGGREGATIONS
from .series import Series

__all__ = [
    "DataFrame",
    "Series",
    "Index",
    "MultiIndex",
    "RangeIndex",
    "ensure_index",
    "concat_rows",
    "concat_columns",
    "merge",
    "join_on_index",
    "to_csv",
    "read_csv",
    "to_json",
    "from_json",
    "AGGREGATIONS",
]
