"""Row-wise and column-wise concatenation of DataFrames.

``concat_rows`` stacks frames vertically taking the union of columns
(missing cells become NaN/None) — used when joining profiles into one
performance-data table.  ``concat_columns`` aligns frames on their row
index and optionally prefixes each frame's columns with a key, creating
the hierarchical column index of §3.2.2 (multi-architecture
composition).
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from ..obs import span as obs_span
from .dataframe import DataFrame
from .index import Index, MultiIndex, ensure_index

__all__ = ["concat_rows", "concat_columns"]


def concat_rows(frames: Sequence[DataFrame]) -> DataFrame:
    """Stack *frames* vertically; column set is the ordered union."""
    frames = [f for f in frames if f is not None]
    if not frames:
        return DataFrame()
    with obs_span("frame.concat_rows", frames=len(frames),
                  rows=sum(len(f) for f in frames)):
        return _concat_rows(frames)


def _concat_rows(frames: Sequence[DataFrame]) -> DataFrame:
    columns: dict[Hashable, None] = {}
    for f in frames:
        for c in f.columns:
            columns.setdefault(c, None)
    columns = list(columns)

    index_values: list = []
    names = None
    is_multi = all(isinstance(f.index, MultiIndex) for f in frames)
    for f in frames:
        index_values.extend(f.index.values)
        if is_multi and names is None:
            names = f.index.names  # type: ignore[union-attr]
    if is_multi:
        new_index: Index = MultiIndex(index_values, names=names)
    else:
        new_index = Index(index_values, name=frames[0].index.name)

    out = DataFrame(index=new_index)
    n_total = len(new_index)
    for c in columns:
        pieces: list[np.ndarray] = []
        for f in frames:
            if c in f:
                pieces.append(f.column(c))
            else:
                pieces.append(_missing_block(len(f)))
        out[c] = _stack(pieces, n_total)
    return out


def _missing_block(n: int) -> np.ndarray:
    block = np.full(n, np.nan, dtype=np.float64)
    return block


def _stack(pieces: list[np.ndarray], n_total: int) -> np.ndarray:
    kinds = {p.dtype.kind for p in pieces}
    if kinds <= {"f", "i", "b"}:
        return np.concatenate([p.astype(np.float64) for p in pieces])
    out = np.empty(n_total, dtype=object)
    pos = 0
    for p in pieces:
        for v in p:
            out[pos] = None if _is_nan(v) else v
            pos += 1
    return out


def _is_nan(v) -> bool:
    return isinstance(v, float) and np.isnan(v)


def concat_columns(frames: Sequence[DataFrame],
                   keys: Sequence[Hashable] | None = None,
                   join: str = "inner") -> DataFrame:
    """Align *frames* on their row index and place columns side by side.

    Parameters
    ----------
    frames:
        Frames to compose.
    keys:
        Optional per-frame labels; when given each frame's columns are
        prefixed, producing tuple column keys (a hierarchical column
        index).
    join:
        ``"inner"`` keeps only rows present in every frame (the paper's
        intersection semantics); ``"outer"`` keeps the union and fills
        missing cells.
    """
    frames = list(frames)
    if not frames:
        return DataFrame()
    if keys is not None and len(keys) != len(frames):
        raise ValueError("keys must match number of frames")
    with obs_span("frame.concat_columns", frames=len(frames), join=join):
        return _concat_columns(frames, keys, join)


def _concat_columns(frames: Sequence[DataFrame],
                    keys: Sequence[Hashable] | None,
                    join: str) -> DataFrame:
    common = frames[0].index
    if join == "inner":
        for f in frames[1:]:
            common = common.intersection(f.index)
    elif join == "outer":
        for f in frames[1:]:
            common = common.union(f.index)
    else:
        raise ValueError(f"join must be 'inner' or 'outer', got {join!r}")
    common = _restore_multi(common, frames)

    out = DataFrame(index=common)
    seen: set[Hashable] = set()
    for i, f in enumerate(frames):
        aligned = f if f.index.equals(common) else f.reindex(common)
        prefix = keys[i] if keys is not None else None
        for c in aligned.columns:
            key = c
            if prefix is not None:
                key = (prefix,) + (c if isinstance(c, tuple) else (c,))
            if key in seen:
                raise ValueError(f"duplicate column {key!r} in concat_columns")
            seen.add(key)
            out[key] = aligned.column(c)
    return out


def _restore_multi(index: Index, frames: Sequence[DataFrame]) -> Index:
    """intersection/union return plain Index; recover MultiIndex names."""
    if isinstance(index, MultiIndex):
        return index
    values = list(index.values)
    if values and all(isinstance(v, tuple) for v in values):
        for f in frames:
            if isinstance(f.index, MultiIndex):
                return MultiIndex(values, names=f.index.names)
        return ensure_index(values, n=len(values))
    return index
