"""Split-apply-combine over DataFrames.

Supports grouping by one or more columns *or* by a level of a
MultiIndex.  The grouper materializes positional partitions once;
aggregations then run one numpy kernel per (group, column) pair.
Thicket's aggregated-statistics table is a groupby over the ``node``
level of the performance data.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterator, Mapping, Sequence

import numpy as np

from ..obs import span as obs_span
from .dataframe import DataFrame
from .index import Index, MultiIndex, sort_positions
from .ops import resolve_aggregation

__all__ = ["GroupBy"]


class GroupBy:
    """Lazy grouping of a DataFrame's rows.

    Parameters
    ----------
    df:
        Source frame.
    by:
        Column key or list of column keys to group on.
    level:
        Alternatively, a MultiIndex level (number or name).
    """

    def __init__(self, df: DataFrame, by: Hashable | Sequence[Hashable] | None = None,
                 level: int | Hashable | None = None):
        if (by is None) == (level is None):
            raise ValueError("specify exactly one of `by` or `level`")
        self._df = df
        self._level = level
        if by is not None and (
            isinstance(by, (str, tuple)) or not isinstance(by, Sequence)
        ):
            by = [by]
        self._by: list[Hashable] | None = list(by) if by is not None else None
        self._groups: dict[Any, np.ndarray] | None = None

    # ------------------------------------------------------------------
    def _key_values(self) -> list[Any]:
        df = self._df
        if self._level is not None:
            if isinstance(df.index, MultiIndex):
                num = df.index.level_number(self._level)
                return [t[num] for t in df.index.values]
            if self._level in (0, df.index.name):
                return list(df.index.values)
            raise KeyError(f"level {self._level!r} not found")
        assert self._by is not None
        if len(self._by) == 1:
            return list(df.column(self._by[0]))
        return list(zip(*(df.column(k) for k in self._by)))

    @property
    def groups(self) -> dict[Any, np.ndarray]:
        """Mapping group key → row positions (insertion-ordered by key sort)."""
        if self._groups is None:
            with obs_span("frame.groupby.partition",
                          rows=len(self._df)) as s:
                buckets: dict[Any, list[int]] = {}
                for i, key in enumerate(self._key_values()):
                    buckets.setdefault(key, []).append(i)
                order = sort_positions(list(buckets.keys()))
                keys = list(buckets.keys())
                self._groups = {
                    keys[i]: np.asarray(buckets[keys[i]], dtype=np.intp)
                    for i in order
                }
                s.set("groups", len(self._groups))
        return self._groups

    def __len__(self) -> int:
        return len(self.groups)

    def __iter__(self) -> Iterator[tuple[Any, DataFrame]]:
        for key, positions in self.groups.items():
            yield key, self._df.take(positions)

    def get_group(self, key: Any) -> DataFrame:
        return self._df.take(self.groups[key])

    def size(self) -> dict[Any, int]:
        return {k: len(p) for k, p in self.groups.items()}

    # ------------------------------------------------------------------
    def agg(self, how: str | Callable | Mapping[Hashable, str | Callable] |
            Mapping[Hashable, Sequence[str | Callable]]) -> DataFrame:
        """Aggregate each group.

        *how* may be a single function/name (applied to every non-key
        column), or a mapping ``column -> function`` /
        ``column -> [functions]``.  Multi-function specs produce columns
        named ``f"{column}_{fn}"`` following Thicket's stats naming.
        """
        df = self._df
        if isinstance(how, Mapping):
            spec: list[tuple[Hashable, Hashable, Callable]] = []
            for col, fns in how.items():
                if isinstance(fns, (str,)) or callable(fns):
                    fns = [fns]
                multi = len(fns) > 1
                for fn in fns:
                    fn_callable = resolve_aggregation(fn)
                    name = fn if isinstance(fn, str) else getattr(fn, "__name__", "agg")
                    out_key = _suffix_key(col, name) if multi else col
                    spec.append((out_key, col, fn_callable))
        else:
            fn_callable = resolve_aggregation(how)
            key_cols = set(self._by or [])
            spec = [
                (c, c, fn_callable) for c in df.columns if c not in key_cols
            ]

        groups = self.groups
        keys = list(groups.keys())
        with obs_span("frame.groupby.agg", groups=len(keys),
                      columns=len(spec)):
            out = DataFrame(index=self._result_index(keys))
            for out_key, col, fn in spec:
                values = df.column(col)
                out[out_key] = [fn(values[pos]) for pos in groups.values()]
        return out

    def _result_index(self, keys: list[Any]) -> Index:
        if self._by is not None and len(self._by) > 1:
            return MultiIndex(keys, names=self._by)
        name: Hashable | None
        if self._by is not None:
            name = self._by[0]
        elif isinstance(self._df.index, MultiIndex):
            name = self._df.index.names[self._df.index.level_number(self._level)]
        else:
            name = self._df.index.name
        return Index(keys, name=name)

    def mean(self) -> DataFrame:
        return self.agg("mean")

    def sum(self) -> DataFrame:
        return self.agg("sum")

    def std(self) -> DataFrame:
        return self.agg("std")

    def var(self) -> DataFrame:
        return self.agg("var")

    def min(self) -> DataFrame:
        return self.agg("min")

    def max(self) -> DataFrame:
        return self.agg("max")

    def median(self) -> DataFrame:
        return self.agg("median")

    def count(self) -> DataFrame:
        return self.agg("count")

    def apply(self, fn: Callable[[DataFrame], Any]) -> dict[Any, Any]:
        """Apply *fn* to each group's sub-frame; returns key → result."""
        return {key: fn(sub) for key, sub in self}


def _suffix_key(col: Hashable, suffix: str) -> Hashable:
    """``col_suffix`` for flat keys, suffix on last element for tuples."""
    if isinstance(col, tuple):
        return col[:-1] + (f"{col[-1]}_{suffix}",)
    return f"{col}_{suffix}"
