"""Serialization of DataFrames to CSV and JSON.

Used by the benchmark harness to persist the regenerated
figure/table data next to the paper's originals.  JSON writes are
atomic (temp file + fsync + rename, via :mod:`repro.ioutil`) and
malformed input raises a typed :class:`repro.errors.PersistenceError`
naming the source, never a bare ``json.JSONDecodeError``.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Any

from ..errors import PersistenceError
from ..ioutil import atomic_write_text
from .dataframe import DataFrame
from .index import MultiIndex

__all__ = ["to_csv", "read_csv", "to_json", "from_json"]


def _flat_col(c: Any) -> str:
    return ".".join(str(p) for p in c) if isinstance(c, tuple) else str(c)


def to_csv(df: DataFrame, path: str | Path | None = None) -> str | None:
    """Write *df* as CSV; returns the text when *path* is None."""
    buf = io.StringIO()
    writer = csv.writer(buf)
    if isinstance(df.index, MultiIndex):
        idx_names = [str(n) if n is not None else f"level_{i}"
                     for i, n in enumerate(df.index.names)]
    else:
        idx_names = [str(df.index.name) if df.index.name is not None else "index"]
    writer.writerow(idx_names + [_flat_col(c) for c in df.columns])
    for lbl, row in df.iterrows():
        idx_cells = list(lbl) if isinstance(lbl, tuple) else [lbl]
        writer.writerow(idx_cells + [row[c] for c in df.columns])
    text = buf.getvalue()
    if path is None:
        return text
    atomic_write_text(Path(path), text)
    return None


def read_csv(path_or_text: str | Path, index_col: int | None = None) -> DataFrame:
    """Read a CSV produced by :func:`to_csv` (or any rectangular CSV)."""
    if isinstance(path_or_text, Path) or "\n" not in str(path_or_text):
        text = Path(path_or_text).read_text()
    else:
        text = str(path_or_text)
    rows = list(csv.reader(io.StringIO(text)))
    if not rows:
        return DataFrame()
    header, data_rows = rows[0], rows[1:]
    cols: dict[str, list] = {h: [] for h in header}
    for r in data_rows:
        for h, v in zip(header, r):
            cols[h].append(_parse_scalar(v))
    df = DataFrame(cols)
    if index_col is not None:
        df = df.set_index(header[index_col])
    return df


def _parse_scalar(text: str) -> Any:
    if text == "":
        return None
    for caster in (int, float):
        try:
            return caster(text)
        except ValueError:
            continue
    return text


def to_json(df: DataFrame, path: str | Path | None = None) -> str | None:
    """JSON with explicit index/columns/data arrays (lossless for tuples)."""
    payload = {
        "columns": [list(c) if isinstance(c, tuple) else c for c in df.columns],
        "index": [list(lbl) if isinstance(lbl, tuple) else lbl
                  for lbl in df.index.values],
        "index_names": (list(df.index.names) if isinstance(df.index, MultiIndex)
                        else [df.index.name]),
        "data": [
            [_jsonable(df.column(c)[i]) for c in df.columns]
            for i in range(len(df))
        ],
    }
    text = json.dumps(payload, indent=1, sort_keys=True)
    if path is None:
        return text
    atomic_write_text(Path(path), text)
    return None


def _jsonable(v: Any) -> Any:
    if hasattr(v, "item"):
        return v.item()
    return v


def from_json(path_or_text: str | Path) -> DataFrame:
    source = None
    if isinstance(path_or_text, Path):
        source = path_or_text
        text = path_or_text.read_text()
    else:
        p = Path(str(path_or_text))
        if p.exists():
            source = p
            text = p.read_text()
        else:
            text = str(path_or_text)
    try:
        payload = json.loads(text)
    except json.JSONDecodeError as e:
        raise PersistenceError(
            f"frame JSON is not decodable (truncated or overwritten?): {e}",
            source=source, stage="load") from e
    if not isinstance(payload, dict) or not {"columns", "index",
                                             "data"} <= set(payload):
        raise PersistenceError(
            "frame JSON is missing the columns/index/data sections",
            source=source, stage="load")
    columns = [tuple(c) if isinstance(c, list) else c for c in payload["columns"]]
    index = [tuple(lbl) if isinstance(lbl, list) else lbl for lbl in payload["index"]]
    data = {c: [row[j] for row in payload["data"]] for j, c in enumerate(columns)}
    names = payload.get("index_names") or [None]
    if index and all(isinstance(lbl, tuple) for lbl in index):
        idx = MultiIndex(index, names=names)
    else:
        from .index import Index

        idx = Index(index, name=names[0])
    return DataFrame(data, index=idx, columns=columns)
