"""A labelled 1-D column: the unit of computation in the frame substrate.

A :class:`Series` pairs a numpy value array with an :class:`Index`.
Comparisons produce boolean Series used for masking DataFrames (the
``filter_metadata`` code path in Thicket); arithmetic aligns
positionally, which is sufficient because every operation inside this
library keeps row order stable.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterable, Iterator

import numpy as np

from .index import Index, ensure_index
from .ops import AGGREGATIONS, coerce_column, is_missing, numeric_values

__all__ = ["Series"]


class Series:
    """One named column of values with row labels."""

    __slots__ = ("values", "index", "name")

    def __init__(self, values: Iterable[Any], index: Index | Iterable | None = None,
                 name: Hashable | None = None):
        if isinstance(values, Series):
            if index is None:
                index = values.index
            if name is None:
                name = values.name
            values = values.values
        n = len(values) if hasattr(values, "__len__") else None
        if n is None:
            values = list(values)
            n = len(values)
        self.values = coerce_column(values, n)
        self.index = ensure_index(index, n=n)
        if len(self.index) != len(self.values):
            raise ValueError(
                f"index length {len(self.index)} != values length {len(self.values)}"
            )
        self.name = name

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    def __getitem__(self, key):
        if isinstance(key, (int, np.integer)) and not isinstance(
            self.index.values[0] if len(self.index) else None, (int, np.integer)
        ):
            # positional access when labels are not ints
            return self.values[key]
        if isinstance(key, Series):
            key = key.values
        if isinstance(key, np.ndarray) and key.dtype == bool:
            return Series(self.values[key], index=self.index[key], name=self.name)
        if isinstance(key, slice):
            return Series(self.values[key], index=self.index[key], name=self.name)
        # label access
        return self.values[self.index.get_loc(key)]

    def iloc(self, pos: int) -> Any:
        return self.values[pos]

    def loc(self, label: Any) -> Any:
        return self.values[self.index.get_loc(label)]

    def __repr__(self) -> str:
        rows = [f"{lbl!r}\t{val!r}" for lbl, val in zip(self.index, self.values)]
        head = "\n".join(rows[:10])
        if len(rows) > 10:
            head += f"\n... ({len(rows)} rows)"
        return f"{head}\nName: {self.name!r}, dtype: {self.values.dtype}"

    # ------------------------------------------------------------------
    # elementwise operations
    # ------------------------------------------------------------------
    def _binary(self, other: Any, op: Callable[[Any, Any], Any]) -> "Series":
        if isinstance(other, Series):
            if len(other) != len(self):
                raise ValueError("cannot align Series of different lengths")
            other = other.values
        try:
            result = op(self.values, other)
        except TypeError:
            result = np.array(
                [op(v, o) for v, o in zip(self.values, np.broadcast_to(other, len(self)))],
                dtype=object,
            )
        return Series(result, index=self.index, name=self.name)

    def __add__(self, other):
        return self._binary(other, lambda a, b: a + b)

    def __radd__(self, other):
        return self._binary(other, lambda a, b: b + a)

    def __sub__(self, other):
        return self._binary(other, lambda a, b: a - b)

    def __rsub__(self, other):
        return self._binary(other, lambda a, b: b - a)

    def __mul__(self, other):
        return self._binary(other, lambda a, b: a * b)

    def __rmul__(self, other):
        return self._binary(other, lambda a, b: b * a)

    def __truediv__(self, other):
        return self._binary(other, lambda a, b: a / b)

    def __rtruediv__(self, other):
        return self._binary(other, lambda a, b: b / a)

    def __neg__(self):
        return Series(-self.values, index=self.index, name=self.name)

    def _compare(self, other: Any, op: Callable[[Any, Any], bool]) -> "Series":
        if isinstance(other, Series):
            other = other.values
        if isinstance(other, np.ndarray) or self.values.dtype != object:
            try:
                result = op(self.values, other)
                if isinstance(result, np.ndarray) and result.dtype == bool:
                    return Series(result, index=self.index, name=self.name)
            except TypeError:
                pass
        result = np.fromiter(
            (bool(op(v, other)) for v in self.values), dtype=bool, count=len(self)
        )
        return Series(result, index=self.index, name=self.name)

    def __eq__(self, other):  # type: ignore[override]
        return self._compare(other, lambda a, b: a == b)

    def __ne__(self, other):  # type: ignore[override]
        return self._compare(other, lambda a, b: a != b)

    def __lt__(self, other):
        return self._compare(other, lambda a, b: a < b)

    def __le__(self, other):
        return self._compare(other, lambda a, b: a <= b)

    def __gt__(self, other):
        return self._compare(other, lambda a, b: a > b)

    def __ge__(self, other):
        return self._compare(other, lambda a, b: a >= b)

    def __hash__(self):
        raise TypeError("Series objects are not hashable")

    def __and__(self, other):
        return self._binary(other, lambda a, b: a & b)

    def __or__(self, other):
        return self._binary(other, lambda a, b: a | b)

    def __invert__(self):
        return Series(~self.values, index=self.index, name=self.name)

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def apply(self, fn: Callable[[Any], Any]) -> "Series":
        return Series([fn(v) for v in self.values], index=self.index, name=self.name)

    def map(self, mapping) -> "Series":
        if callable(mapping):
            return self.apply(mapping)
        return self.apply(lambda v: mapping.get(v))

    def astype(self, dtype) -> "Series":
        return Series(self.values.astype(dtype), index=self.index, name=self.name)

    def isin(self, values: Iterable[Any]) -> "Series":
        wanted = set(values)
        return Series(
            np.fromiter((v in wanted for v in self.values), dtype=bool, count=len(self)),
            index=self.index, name=self.name,
        )

    def isna(self) -> "Series":
        return Series(is_missing(self.values), index=self.index, name=self.name)

    def notna(self) -> "Series":
        return Series(~is_missing(self.values), index=self.index, name=self.name)

    def fillna(self, value: Any) -> "Series":
        mask = is_missing(self.values)
        out = self.values.copy()
        out[mask] = value
        return Series(out, index=self.index, name=self.name)

    def unique(self) -> list:
        seen: dict[Any, None] = {}
        for v in self.values:
            seen.setdefault(v, None)
        return list(seen.keys())

    def nunique(self) -> int:
        return len(self.unique())

    def tolist(self) -> list:
        return list(self.values)

    def to_numpy(self) -> np.ndarray:
        return self.values.copy()

    def copy(self) -> "Series":
        return Series(self.values.copy(), index=self.index, name=self.name)

    def rename(self, name: Hashable) -> "Series":
        return Series(self.values, index=self.index, name=name)

    def sort_values(self, ascending: bool = True) -> "Series":
        from .index import sort_positions

        order = sort_positions(list(self.values), reverse=not ascending)
        return Series(self.values[np.asarray(order)], index=self.index.take(order),
                      name=self.name)

    def head(self, n: int = 5) -> "Series":
        return self[slice(0, n)]

    # ------------------------------------------------------------------
    # reductions
    # ------------------------------------------------------------------
    def _agg(self, how: str) -> Any:
        return AGGREGATIONS[how](self.values)

    def mean(self) -> float:
        return self._agg("mean")

    def median(self) -> float:
        return self._agg("median")

    def sum(self) -> float:
        return self._agg("sum")

    def min(self) -> float:
        return self._agg("min")

    def max(self) -> float:
        return self._agg("max")

    def std(self, ddof: int = 1) -> float:
        data = numeric_values(self.values)
        if len(data) <= ddof:
            return 0.0
        return float(np.std(data, ddof=ddof))

    def var(self, ddof: int = 1) -> float:
        data = numeric_values(self.values)
        if len(data) <= ddof:
            return 0.0
        return float(np.var(data, ddof=ddof))

    def count(self) -> int:
        return self._agg("count")

    def all(self) -> bool:
        return bool(np.all([bool(v) for v in self.values]))

    def any(self) -> bool:
        return bool(np.any([bool(v) for v in self.values]))

    def quantile(self, q: float) -> float:
        data = numeric_values(self.values)
        if len(data) == 0:
            return float("nan")
        return float(np.percentile(data, q * 100.0))

    def idxmax(self) -> Any:
        data = numeric_values(self.values, drop_missing=False)
        return self.index[int(np.nanargmax(data))]

    def idxmin(self) -> Any:
        data = numeric_values(self.values, drop_missing=False)
        return self.index[int(np.nanargmin(data))]

    def value_counts(self) -> "Series":
        """Occurrences per distinct value, most frequent first."""
        counts: dict[Any, int] = {}
        for v in self.values:
            counts[v] = counts.get(v, 0) + 1
        ordered = sorted(counts.items(), key=lambda kv: -kv[1])
        return Series([c for _, c in ordered],
                      index=Index([k for k, _ in ordered]),
                      name=self.name)

    def describe(self) -> dict[str, float]:
        """count/mean/std/min/quartiles/max of the numeric values."""
        data = numeric_values(self.values)
        if len(data) == 0:
            return {"count": 0.0}
        q1, med, q3 = np.percentile(data, [25, 50, 75])
        return {
            "count": float(len(data)),
            "mean": float(np.mean(data)),
            "std": float(np.std(data, ddof=1)) if len(data) > 1 else 0.0,
            "min": float(np.min(data)),
            "25%": float(q1), "50%": float(med), "75%": float(q3),
            "max": float(np.max(data)),
        }
