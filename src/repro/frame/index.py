"""Index objects for the frame substrate.

An :class:`Index` is an immutable, ordered collection of row (or column)
labels.  A :class:`MultiIndex` is an index whose labels are tuples,
giving hierarchical (multi-level) indexing — the backbone of Thicket's
*(call-tree node, profile)* row keys and *(source, metric)* column keys.

Labels are stored in a numpy object array so heterogeneous label types
(graph nodes, ints, strings) coexist without coercion.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable, Iterator, Sequence

import numpy as np

__all__ = ["Index", "MultiIndex", "RangeIndex", "ensure_index"]


def _as_object_array(values: Iterable[Any]) -> np.ndarray:
    """Build a 1-D object array without numpy flattening tuple elements."""
    values = list(values)
    arr = np.empty(len(values), dtype=object)
    for i, v in enumerate(values):
        arr[i] = v
    return arr


class Index:
    """An immutable ordered set of row labels.

    Parameters
    ----------
    values:
        Iterable of hashable labels.
    name:
        Optional name for the index (e.g. ``"profile"``).
    """

    __slots__ = ("_values", "name", "_loc_cache")

    def __init__(self, values: Iterable[Any], name: Hashable | None = None):
        if isinstance(values, Index):
            if name is None:
                name = values.name
            values = values._values
        self._values = _as_object_array(values)
        self.name = name
        self._loc_cache: dict[Any, int] | None = None

    # ------------------------------------------------------------------
    # basic container protocol
    # ------------------------------------------------------------------
    @property
    def values(self) -> np.ndarray:
        return self._values

    def __len__(self) -> int:
        return len(self._values)

    def __iter__(self) -> Iterator[Any]:
        return iter(self._values)

    def _with_values(self, values: Iterable[Any]) -> "Index":
        """Construct a same-type index with new labels (metadata kept)."""
        return Index(values, name=self.name)

    def __getitem__(self, key):
        if isinstance(key, (int, np.integer)):
            return self._values[key]
        # slice / fancy / boolean indexing returns a new Index
        return self._with_values(self._values[key])

    def __contains__(self, label: Any) -> bool:
        return label in self._build_loc()

    def __eq__(self, other: object) -> bool:  # type: ignore[override]
        if not isinstance(other, Index):
            return NotImplemented
        if len(self) != len(other):
            return False
        return all(a == b for a, b in zip(self._values, other._values))

    def __hash__(self):  # Index is conceptually immutable but unhashable
        raise TypeError("Index objects are not hashable")

    def __repr__(self) -> str:
        labels = ", ".join(repr(v) for v in self._values[:8])
        if len(self) > 8:
            labels += ", ..."
        name = f", name={self.name!r}" if self.name is not None else ""
        return f"{type(self).__name__}([{labels}]{name})"

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def _build_loc(self) -> dict[Any, int]:
        if self._loc_cache is None:
            self._loc_cache = {}
            for i, v in enumerate(self._values):
                # first occurrence wins for duplicate labels
                self._loc_cache.setdefault(v, i)
        return self._loc_cache

    def get_loc(self, label: Any) -> int:
        """Position of *label*; raises ``KeyError`` if absent."""
        try:
            return self._build_loc()[label]
        except KeyError:
            raise KeyError(f"label {label!r} not found in index") from None

    def get_indexer(self, labels: Iterable[Any]) -> np.ndarray:
        """Positions of *labels*; -1 for missing labels."""
        loc = self._build_loc()
        return np.array([loc.get(lbl, -1) for lbl in labels], dtype=np.intp)

    def isin(self, labels: Iterable[Any]) -> np.ndarray:
        wanted = set(labels)
        return np.fromiter(
            (v in wanted for v in self._values), dtype=bool, count=len(self)
        )

    # ------------------------------------------------------------------
    # set-like operations (order-preserving)
    # ------------------------------------------------------------------
    def unique(self) -> "Index":
        seen: dict[Any, None] = {}
        for v in self._values:
            seen.setdefault(v, None)
        return self._with_values(seen.keys())

    def intersection(self, other: "Index") -> "Index":
        other_set = set(other._values)
        return self._with_values([v for v in self.unique() if v in other_set])

    def union(self, other: "Index") -> "Index":
        seen: dict[Any, None] = {}
        for v in self._values:
            seen.setdefault(v, None)
        for v in other._values:
            seen.setdefault(v, None)
        return self._with_values(seen.keys())

    def difference(self, other: "Index") -> "Index":
        other_set = set(other._values)
        return self._with_values([v for v in self.unique() if v not in other_set])

    # ------------------------------------------------------------------
    # transforms
    # ------------------------------------------------------------------
    def take(self, positions: Sequence[int]) -> "Index":
        return self._with_values(self._values[np.asarray(positions, dtype=np.intp)])

    def rename(self, name: Hashable) -> "Index":
        return Index(self._values, name=name)

    def tolist(self) -> list:
        return list(self._values)

    def argsort(self, reverse: bool = False) -> np.ndarray:
        order = sorted(range(len(self)), key=lambda i: _sort_key(self._values[i]),
                       reverse=reverse)
        return np.asarray(order, dtype=np.intp)

    def has_duplicates(self) -> bool:
        return len(self._build_loc()) != len(self)

    @property
    def nlevels(self) -> int:
        return 1

    def equals(self, other: "Index") -> bool:
        return self == other


def _sort_key(value: Any):
    """Total order over mixed label types: group by type name, then value."""
    try:
        # fast path: homogeneous comparable values
        return (0, value)
    except TypeError:  # pragma: no cover - defensive
        return (1, str(value))


class _TotalOrderKey:
    """Wrapper making heterogeneous values sortable deterministically."""

    __slots__ = ("value",)

    def __init__(self, value: Any):
        self.value = value

    def __lt__(self, other: "_TotalOrderKey") -> bool:
        a, b = self.value, other.value
        try:
            return bool(a < b)
        except TypeError:
            return (type(a).__name__, str(a)) < (type(b).__name__, str(b))


def sort_positions(values: Sequence[Any], reverse: bool = False) -> list[int]:
    """Stable argsort tolerating heterogeneous (even uncomparable) labels."""
    return sorted(range(len(values)),
                  key=lambda i: _TotalOrderKey(values[i]),
                  reverse=reverse)


class MultiIndex(Index):
    """Hierarchical index of equal-length tuples.

    Parameters
    ----------
    tuples:
        Iterable of tuples, one per row.
    names:
        Per-level names, e.g. ``("node", "profile")``.
    """

    __slots__ = ("names",)

    def __init__(self, tuples: Iterable[tuple], names: Sequence[Hashable] | None = None):
        tuples = [tuple(t) for t in tuples]
        if tuples:
            width = len(tuples[0])
            for t in tuples:
                if len(t) != width:
                    raise ValueError(
                        f"MultiIndex tuples must share arity: {width} != {len(t)}"
                    )
        else:
            width = len(names) if names else 0
        super().__init__(tuples, name=None)
        if names is None:
            names = [None] * width
        if width and len(names) != width:
            raise ValueError(
                f"names length {len(names)} does not match tuple arity {width}"
            )
        self.names = list(names)

    @classmethod
    def from_product(cls, iterables: Sequence[Iterable[Any]],
                     names: Sequence[Hashable] | None = None) -> "MultiIndex":
        pools = [list(it) for it in iterables]
        tuples: list[tuple] = [()]
        for pool in pools:
            tuples = [t + (v,) for t in tuples for v in pool]
        return cls(tuples, names=names)

    @classmethod
    def from_arrays(cls, arrays: Sequence[Sequence[Any]],
                    names: Sequence[Hashable] | None = None) -> "MultiIndex":
        if arrays and len({len(a) for a in arrays}) > 1:
            raise ValueError("all arrays must be the same length")
        return cls(list(zip(*arrays)), names=names)

    # ------------------------------------------------------------------
    @property
    def nlevels(self) -> int:
        return len(self.names)

    def _with_values(self, values):
        return MultiIndex(values, names=self.names)

    def __getitem__(self, key):
        if isinstance(key, (int, np.integer)):
            return self._values[key]
        return MultiIndex(self._values[key], names=self.names)

    def take(self, positions: Sequence[int]) -> "MultiIndex":
        return MultiIndex(
            self._values[np.asarray(positions, dtype=np.intp)], names=self.names
        )

    def level_number(self, level: int | Hashable) -> int:
        if isinstance(level, int):
            if not -self.nlevels <= level < self.nlevels:
                raise KeyError(f"level {level} out of range")
            return level % self.nlevels
        if level in self.names:
            return self.names.index(level)
        raise KeyError(f"level {level!r} not found in {self.names}")

    def get_level_values(self, level: int | Hashable) -> Index:
        num = self.level_number(level)
        return Index([t[num] for t in self._values], name=self.names[num])

    def droplevel(self, level: int | Hashable) -> Index:
        num = self.level_number(level)
        if self.nlevels == 2:
            keep = 1 - num
            return Index([t[keep] for t in self._values],
                         name=self.names[keep])
        names = [n for i, n in enumerate(self.names) if i != num]
        return MultiIndex(
            [tuple(v for i, v in enumerate(t) if i != num) for t in self._values],
            names=names,
        )

    def rename(self, names: Sequence[Hashable]) -> "MultiIndex":  # type: ignore[override]
        return MultiIndex(self._values, names=list(names))

    def unique_level(self, level: int | Hashable) -> list:
        seen: dict[Any, None] = {}
        num = self.level_number(level)
        for t in self._values:
            seen.setdefault(t[num], None)
        return list(seen.keys())

    def __repr__(self) -> str:
        labels = ", ".join(repr(v) for v in self._values[:6])
        if len(self) > 6:
            labels += ", ..."
        return f"MultiIndex([{labels}], names={self.names!r})"


class RangeIndex(Index):
    """Default positional index ``0..n-1``."""

    __slots__ = ()

    def __init__(self, n_or_values, name: Hashable | None = None):
        if isinstance(n_or_values, (int, np.integer)):
            values: Iterable[Any] = range(int(n_or_values))
        else:
            values = n_or_values
        super().__init__(values, name=name)


def ensure_index(obj, n: int | None = None) -> Index:
    """Coerce *obj* to an :class:`Index`.

    ``None`` becomes a :class:`RangeIndex` of length *n*.  Iterables of
    tuples become a :class:`MultiIndex`.
    """
    if obj is None:
        if n is None:
            raise ValueError("need a length to build a default index")
        return RangeIndex(n)
    if isinstance(obj, Index):
        return obj
    values = list(obj)
    if values and all(isinstance(v, tuple) for v in values):
        widths = {len(v) for v in values}
        if len(widths) == 1:
            return MultiIndex(values)
    return Index(values)
