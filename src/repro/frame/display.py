"""Plain-text rendering of DataFrames (the `repr` users see in a REPL).

Mirrors the tabular figures in the paper: hierarchical column keys
render as stacked header rows (Fig. 4's CPU/GPU banner), MultiIndex
rows render with blanked repeats (Fig. 4's node/problem_size rows).
"""

from __future__ import annotations

from typing import Any

import numpy as np

from .index import MultiIndex

__all__ = ["format_frame", "format_value"]


def format_value(v: Any, float_fmt: str = "{:.6g}") -> str:
    if v is None:
        return "None"
    if isinstance(v, (float, np.floating)):
        if np.isnan(v):
            return "NaN"
        return float_fmt.format(float(v))
    return str(v)


def format_frame(df, max_rows: int = 40, float_fmt: str = "{:.6g}") -> str:
    n = len(df)
    shown = min(n, max_rows)
    truncated = shown < n

    # --- index cells -------------------------------------------------
    if isinstance(df.index, MultiIndex):
        idx_names = [str(nm) if nm is not None else "" for nm in df.index.names]
        idx_rows = [
            [format_value(part, float_fmt) for part in df.index.values[i]]
            for i in range(shown)
        ]
        # blank repeated prefixes, pandas-style
        for i in range(shown - 1, 0, -1):
            for lv in range(len(idx_names)):
                if idx_rows[i][: lv + 1] == idx_rows[i - 1][: lv + 1]:
                    idx_rows[i][lv] = ""
                else:
                    break
    else:
        idx_names = [str(df.index.name) if df.index.name is not None else ""]
        idx_rows = [[format_value(df.index.values[i], float_fmt)] for i in range(shown)]

    # --- column headers (possibly multi-level) -----------------------
    nlevels = df.column_nlevels()
    col_headers: list[list[str]] = []
    for lv in range(nlevels):
        row = []
        for c in df.columns:
            parts = c if isinstance(c, tuple) else (c,)
            row.append(str(parts[lv]) if lv < len(parts) else "")
        col_headers.append(row)
    # blank repeated top-level banners
    for lv in range(nlevels - 1):
        prev = None
        for j, cell in enumerate(col_headers[lv]):
            if cell == prev:
                col_headers[lv][j] = ""
            else:
                prev = cell

    # --- body ---------------------------------------------------------
    body = [
        [format_value(df.column(c)[i], float_fmt) for c in df.columns]
        for i in range(shown)
    ]

    n_idx = len(idx_names)
    table: list[list[str]] = []
    for lv in range(nlevels):
        left = idx_names if lv == nlevels - 1 else [""] * n_idx
        table.append(list(left) + col_headers[lv])
    for ir, br in zip(idx_rows, body):
        table.append(ir + br)

    widths = [
        max(len(row[j]) for row in table) for j in range(n_idx + len(df.columns))
    ]
    lines = []
    for r, row in enumerate(table):
        cells = []
        for j, cell in enumerate(row):
            pad = cell.ljust(widths[j]) if j < n_idx else cell.rjust(widths[j])
            cells.append(pad)
        lines.append("  ".join(cells).rstrip())
    if truncated:
        lines.append(f"... [{n} rows x {len(df.columns)} columns]")
    else:
        lines.append(f"[{n} rows x {len(df.columns)} columns]")
    return "\n".join(lines)
