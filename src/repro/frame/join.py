"""Relational joins between DataFrames on index labels or key columns.

The entity-relationship structure in the paper (Fig. 3) links the
metadata table (one row per profile) to the performance-data table
(many rows per profile) through the profile index — a classic
one-to-many join implemented here.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from ..obs import span as obs_span
from .dataframe import DataFrame
from .index import Index

__all__ = ["join_on_index", "merge"]


def join_on_index(left: DataFrame, right: DataFrame, how: str = "inner",
                  lsuffix: str = "", rsuffix: str = "_right") -> DataFrame:
    """Join two frames on their (single-level or multi) row index."""
    with obs_span("frame.join_on_index", how=how, left=len(left),
                  right=len(right)):
        return _join_on_index(left, right, how, lsuffix, rsuffix)


def _join_on_index(left: DataFrame, right: DataFrame, how: str,
                   lsuffix: str, rsuffix: str) -> DataFrame:
    if how == "inner":
        labels = left.index.intersection(right.index)
    elif how == "left":
        labels = left.index.unique()
    elif how == "outer":
        labels = left.index.union(right.index)
    else:
        raise ValueError(f"how must be inner/left/outer, got {how!r}")

    l_aligned = left.reindex(labels)
    r_aligned = right.reindex(labels)
    out = DataFrame(index=l_aligned.index)
    for c in l_aligned.columns:
        key = c if c not in r_aligned.columns else _suffixed(c, lsuffix)
        out[key] = l_aligned.column(c)
    for c in r_aligned.columns:
        key = c if c not in l_aligned.columns else _suffixed(c, rsuffix)
        out[key] = r_aligned.column(c)
    return out


def _suffixed(col: Hashable, suffix: str) -> Hashable:
    if not suffix:
        return col
    if isinstance(col, tuple):
        return col[:-1] + (f"{col[-1]}{suffix}",)
    return f"{col}{suffix}"


def merge(left: DataFrame, right: DataFrame, on: Hashable | Sequence[Hashable],
          how: str = "inner", suffixes: tuple[str, str] = ("_x", "_y")) -> DataFrame:
    """SQL-style merge on shared key column(s).

    Implements a hash join: the right side is bucketed by key once,
    then left rows probe the buckets.  ``how`` supports inner/left.
    """
    with obs_span("frame.merge", how=how, left=len(left),
                  right=len(right)):
        return _merge(left, right, on, how, suffixes)


def _merge(left: DataFrame, right: DataFrame, on, how: str,
           suffixes: tuple[str, str]) -> DataFrame:
    if isinstance(on, (str, tuple)):
        on = [on]
    on = list(on)
    for k in on:
        if k not in left or k not in right:
            raise KeyError(f"merge key {k!r} missing from one side")

    def keys_of(df: DataFrame) -> list:
        if len(on) == 1:
            return list(df.column(on[0]))
        return list(zip(*(df.column(k) for k in on)))

    right_buckets: dict = {}
    for i, key in enumerate(keys_of(right)):
        right_buckets.setdefault(key, []).append(i)

    left_keys = keys_of(left)
    l_pos: list[int] = []
    r_pos: list[int] = []
    for i, key in enumerate(left_keys):
        matches = right_buckets.get(key)
        if matches:
            for j in matches:
                l_pos.append(i)
                r_pos.append(j)
        elif how == "left":
            l_pos.append(i)
            r_pos.append(-1)

    l_take = left.take(l_pos) if l_pos else left.take([])
    out = DataFrame(index=Index(range(len(l_pos))))
    shared = set(left.columns) & set(right.columns) - set(on)
    for c in l_take.columns:
        key = _suffixed(c, suffixes[0]) if c in shared else c
        out[key] = l_take.column(c)
    r_pos_arr = np.asarray(r_pos, dtype=np.intp)
    present = r_pos_arr >= 0
    safe = np.where(present, r_pos_arr, 0)
    for c in right.columns:
        if c in on:
            continue
        col = right.column(c)[safe] if len(safe) else right.column(c)[:0]
        if not present.all():
            if col.dtype.kind in "ibf":
                col = col.astype(np.float64)
                col[~present] = np.nan
            else:
                col = col.astype(object)
                col[~present] = None
        key = _suffixed(c, suffixes[1]) if c in shared else c
        out[key] = col
    return out
