"""A columnar, numpy-backed DataFrame with hierarchical row/column keys.

This is the pandas substitute underlying every Thicket component.  Data
is stored column-major — one numpy array per column — so statistics and
masking vectorize (per the HPC guides: push the hot loop into numpy).

Two pandas features Thicket relies on are reproduced faithfully:

* **MultiIndex rows** — performance data is keyed by
  ``(call-tree node, profile)`` tuples;
* **tuple column keys** — horizontal (multi-architecture) composition
  produces columns like ``("CPU", "time (exc)")`` and ``("GPU",
  "time (gpu)")``, selectable by top-level key.
"""

from __future__ import annotations

from typing import Any, Callable, Hashable, Iterable, Iterator, Mapping, Sequence

import numpy as np

from .index import Index, MultiIndex, RangeIndex, ensure_index, sort_positions
from .ops import coerce_column, is_missing, resolve_aggregation
from .series import Series

__all__ = ["DataFrame"]


class _LocIndexer:
    """Label-based row access: ``df.loc[label]``, ``df.loc[mask]``."""

    __slots__ = ("_df",)

    def __init__(self, df: "DataFrame"):
        self._df = df

    def __getitem__(self, key):
        df = self._df
        if isinstance(key, Series):
            key = key.values
        if isinstance(key, np.ndarray) and key.dtype == bool:
            return df._take_mask(key)
        if isinstance(key, list):
            positions = df.index.get_indexer(key)
            if (positions < 0).any():
                missing = [k for k, p in zip(key, positions) if p < 0]
                raise KeyError(f"labels not found: {missing!r}")
            return df.take(positions)
        # single label -> dict-like row view
        pos = df.index.get_loc(key)
        return {col: df._data[col][pos] for col in df.columns}


class _ILocIndexer:
    """Positional row access: ``df.iloc[3]``, ``df.iloc[2:5]``."""

    __slots__ = ("_df",)

    def __init__(self, df: "DataFrame"):
        self._df = df

    def __getitem__(self, key):
        df = self._df
        if isinstance(key, (int, np.integer)):
            return {col: df._data[col][key] for col in df.columns}
        if isinstance(key, slice):
            positions = np.arange(len(df))[key]
        else:
            positions = np.asarray(key, dtype=np.intp)
        return df.take(positions)


class DataFrame:
    """Two-dimensional labelled table.

    Parameters
    ----------
    data:
        Mapping of column key → column values, or list of record dicts.
    index:
        Row labels (defaults to ``RangeIndex``).
    columns:
        Explicit column order (defaults to insertion/appearance order).
    """

    __slots__ = ("_data", "_columns", "index")

    def __init__(self, data: Mapping | Sequence[Mapping] | None = None,
                 index: Index | Iterable | None = None,
                 columns: Sequence[Hashable] | None = None):
        self._data: dict[Hashable, np.ndarray] = {}
        self._columns: list[Hashable] = []

        if data is None:
            data = {}
        if isinstance(data, DataFrame):
            index = data.index if index is None else index
            columns = list(data.columns) if columns is None else columns
            data = {c: data._data[c] for c in data.columns}
        if isinstance(data, Mapping):
            items = list(data.items())
        else:  # sequence of record dicts
            records = list(data)
            keys: dict[Hashable, None] = {}
            for rec in records:
                for k in rec:
                    keys.setdefault(k, None)
            items = [
                (k, [rec.get(k) for rec in records]) for k in keys
            ]

        n: int | None = None
        for _, values in items:
            if hasattr(values, "__len__") and not np.isscalar(values):
                n = len(values)
                break
        if n is None:
            if index is not None:
                n = len(ensure_index(index, n=0)) if not isinstance(index, Index) else len(index)
            else:
                n = 0

        self.index = ensure_index(index, n=n)
        n = len(self.index)
        for key, values in items:
            if isinstance(values, Series):
                values = values.values
            self._data[key] = coerce_column(values, n)
            self._columns.append(key)

        if columns is not None:
            missing = [c for c in columns if c not in self._data]
            if missing:
                for c in missing:
                    self._data[c] = coerce_column(None, n)
            self._columns = list(columns)

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    @property
    def columns(self) -> list[Hashable]:
        return list(self._columns)

    @property
    def shape(self) -> tuple[int, int]:
        return (len(self.index), len(self._columns))

    @property
    def empty(self) -> bool:
        return len(self.index) == 0

    def __len__(self) -> int:
        return len(self.index)

    def __contains__(self, col: Hashable) -> bool:
        return col in self._data

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._columns)

    @property
    def loc(self) -> _LocIndexer:
        return _LocIndexer(self)

    @property
    def iloc(self) -> _ILocIndexer:
        return _ILocIndexer(self)

    # ------------------------------------------------------------------
    # selection
    # ------------------------------------------------------------------
    def __getitem__(self, key):
        if isinstance(key, Series):
            key = key.values
        if isinstance(key, np.ndarray) and key.dtype == bool:
            return self._take_mask(key)
        if isinstance(key, list):
            return self.select(key)
        if key in self._data:
            return Series(self._data[key], index=self.index, name=key)
        # tuple key may be a hierarchical prefix: df[("CPU",)] or df["CPU"]
        sub = self._level_prefix_columns(key)
        if sub:
            return self.select(sub, strip_prefix=key)
        raise KeyError(f"column {key!r} not found")

    def _level_prefix_columns(self, key: Hashable) -> list[Hashable]:
        """Columns whose tuple key starts with *key* (or ``(key,)``)."""
        prefix = key if isinstance(key, tuple) else (key,)
        return [
            c for c in self._columns
            if isinstance(c, tuple) and len(c) > len(prefix) and c[: len(prefix)] == prefix
        ]

    def select(self, cols: Sequence[Hashable], strip_prefix: Hashable | None = None
               ) -> "DataFrame":
        """Project a subset of columns, optionally stripping a tuple prefix."""
        missing = [c for c in cols if c not in self._data]
        if missing:
            raise KeyError(f"columns not found: {missing!r}")
        out = DataFrame(index=self.index)
        for c in cols:
            new_key = c
            if strip_prefix is not None:
                prefix = strip_prefix if isinstance(strip_prefix, tuple) else (strip_prefix,)
                rest = c[len(prefix):]
                new_key = rest[0] if len(rest) == 1 else rest
            out._data[new_key] = self._data[c]
            out._columns.append(new_key)
        return out

    def _take_mask(self, mask: np.ndarray) -> "DataFrame":
        if len(mask) != len(self):
            raise ValueError("boolean mask length mismatch")
        out = DataFrame(index=self.index[mask])
        for c in self._columns:
            out._data[c] = self._data[c][mask]
            out._columns.append(c)
        return out

    def take(self, positions: Sequence[int]) -> "DataFrame":
        positions = np.asarray(positions, dtype=np.intp)
        out = DataFrame(index=self.index.take(positions))
        for c in self._columns:
            out._data[c] = self._data[c][positions]
            out._columns.append(c)
        return out

    def head(self, n: int = 5) -> "DataFrame":
        return self.take(np.arange(min(n, len(self))))

    def column(self, key: Hashable) -> np.ndarray:
        """Raw numpy array for a column (no copy)."""
        return self._data[key]

    def get(self, key: Hashable, default=None):
        if key in self._data:
            return self[key]
        return default

    def xs(self, label: Any, level: int | Hashable = 0) -> "DataFrame":
        """Cross-section: rows whose MultiIndex *level* equals *label*."""
        if not isinstance(self.index, MultiIndex):
            raise TypeError("xs requires a MultiIndex")
        num = self.index.level_number(level)
        mask = np.fromiter(
            (t[num] == label for t in self.index.values), dtype=bool, count=len(self)
        )
        out = self._take_mask(mask)
        out.index = out.index.droplevel(num)  # type: ignore[union-attr]
        return out

    # ------------------------------------------------------------------
    # mutation (column-level; rows are immutable by design)
    # ------------------------------------------------------------------
    def __setitem__(self, key: Hashable, values) -> None:
        if isinstance(values, Series):
            values = values.values
        self._data[key] = coerce_column(values, len(self))
        if key not in self._columns:
            self._columns.append(key)

    def insert(self, pos: int, key: Hashable, values) -> None:
        self[key] = values
        self._columns.remove(key)
        self._columns.insert(pos, key)

    def drop(self, columns: Hashable | Sequence[Hashable] | None = None,
             index: Sequence[Any] | None = None) -> "DataFrame":
        out = self.copy()
        if columns is not None:
            if isinstance(columns, (str, tuple)):
                columns = [columns]
            for c in columns:
                if c not in out._data:
                    raise KeyError(f"column {c!r} not found")
                del out._data[c]
                out._columns.remove(c)
        if index is not None:
            drop_set = set(index)
            mask = np.fromiter(
                (lbl not in drop_set for lbl in out.index.values),
                dtype=bool, count=len(out),
            )
            out = out._take_mask(mask)
        return out

    def rename(self, columns: Mapping[Hashable, Hashable]) -> "DataFrame":
        out = DataFrame(index=self.index)
        for c in self._columns:
            new = columns.get(c, c)
            out._data[new] = self._data[c]
            out._columns.append(new)
        return out

    def copy(self) -> "DataFrame":
        out = DataFrame(index=self.index)
        for c in self._columns:
            out._data[c] = self._data[c].copy()
            out._columns.append(c)
        return out

    # ------------------------------------------------------------------
    # index manipulation
    # ------------------------------------------------------------------
    def set_index(self, keys: Hashable | Sequence[Hashable], drop: bool = True
                  ) -> "DataFrame":
        if isinstance(keys, (str, tuple)) or not isinstance(keys, Sequence):
            keys = [keys]
        keys = list(keys)
        if len(keys) == 1:
            new_index: Index = Index(self._data[keys[0]], name=keys[0])
        else:
            new_index = MultiIndex(
                list(zip(*(self._data[k] for k in keys))), names=keys
            )
        out = self.drop(columns=keys) if drop else self.copy()
        out.index = new_index
        return out

    def reset_index(self, names: Sequence[Hashable] | None = None) -> "DataFrame":
        """Move index level(s) into ordinary columns, re-labelling rows 0..n-1."""
        out = DataFrame(index=RangeIndex(len(self)))
        if isinstance(self.index, MultiIndex):
            level_names = names or [
                n if n is not None else f"level_{i}"
                for i, n in enumerate(self.index.names)
            ]
            for i, name in enumerate(level_names):
                out._data[name] = coerce_column(
                    [t[i] for t in self.index.values], len(self)
                )
                out._columns.append(name)
        else:
            name = (names[0] if names else None) or self.index.name or "index"
            out._data[name] = coerce_column(list(self.index.values), len(self))
            out._columns.append(name)
        for c in self._columns:
            out._data[c] = self._data[c]
            out._columns.append(c)
        return out

    def reindex(self, new_index: Index | Iterable) -> "DataFrame":
        """Align rows with *new_index*, filling missing rows with NaN/None."""
        new_index = ensure_index(new_index, n=0)
        positions = self.index.get_indexer(new_index.values)
        out = DataFrame(index=new_index)
        present = positions >= 0
        safe = np.where(present, positions, 0)
        for c in self._columns:
            col = self._data[c]
            if col.dtype.kind in "ib":
                col = col.astype(np.float64)
            taken = col[safe]
            if col.dtype.kind == "f":
                taken = taken.astype(np.float64)
                taken[~present] = np.nan
            else:
                taken = taken.astype(object)
                taken[~present] = None
            out._data[c] = taken
            out._columns.append(c)
        return out

    def sort_index(self, ascending: bool = True) -> "DataFrame":
        order = sort_positions(list(self.index.values), reverse=not ascending)
        return self.take(order)

    def sort_values(self, by: Hashable | Sequence[Hashable],
                    ascending: bool = True) -> "DataFrame":
        if isinstance(by, (str, tuple)) and by in self._data:
            keys = [by]
        elif isinstance(by, Sequence) and not isinstance(by, (str, tuple)):
            keys = list(by)
        else:
            keys = [by]
        rows = list(zip(*(self._data[k] for k in keys)))
        order = sort_positions(rows, reverse=not ascending)
        return self.take(order)

    # ------------------------------------------------------------------
    # computation
    # ------------------------------------------------------------------
    def apply(self, fn: Callable, axis: int = 0) -> Series:
        """Apply *fn* per column (axis=0) or per row-dict (axis=1)."""
        if axis == 0:
            return Series(
                [fn(Series(self._data[c], index=self.index, name=c))
                 for c in self._columns],
                index=Index(self._columns), name=None,
            )
        rows = [
            {c: self._data[c][i] for c in self._columns} for i in range(len(self))
        ]
        return Series([fn(r) for r in rows], index=self.index)

    def agg(self, how: str | Callable | Mapping[Hashable, str | Callable]) -> Series:
        if isinstance(how, Mapping):
            keys = list(how.keys())
            return Series(
                [resolve_aggregation(how[k])(self._data[k]) for k in keys],
                index=Index(keys),
            )
        fn = resolve_aggregation(how)
        return Series(
            [fn(self._data[c]) for c in self._columns], index=Index(self._columns)
        )

    def mean(self) -> Series:
        return self.agg("mean")

    def sum(self) -> Series:
        return self.agg("sum")

    def groupby(self, by: Hashable | Sequence[Hashable] | None = None,
                level: int | Hashable | None = None):
        from .groupby import GroupBy

        return GroupBy(self, by=by, level=level)

    def describe(self, columns: Sequence[Hashable] | None = None
                 ) -> "DataFrame":
        """Summary statistics per numeric column (count/mean/std/min/
        quartiles/max), one row per statistic."""
        from .ops import numeric_values

        if columns is None:
            columns = [c for c in self._columns
                       if self._data[c].dtype.kind in "if"]
        stats_rows = ["count", "mean", "std", "min", "25%", "50%", "75%",
                      "max"]
        out = DataFrame(index=Index(stats_rows, name="statistic"))
        for c in columns:
            data = numeric_values(self._data[c])
            if len(data) == 0:
                out[c] = [0.0] + [np.nan] * 7
                continue
            q1, med, q3 = np.percentile(data, [25, 50, 75])
            out[c] = [
                float(len(data)), float(np.mean(data)),
                float(np.std(data, ddof=1)) if len(data) > 1 else 0.0,
                float(np.min(data)), float(q1), float(med), float(q3),
                float(np.max(data)),
            ]
        return out

    def unstack(self, level: int | Hashable = -1) -> "DataFrame":
        """Pivot one MultiIndex level into the columns.

        ``(node, profile) -> metric`` rows become ``node`` rows with
        ``(metric, profile)`` columns — the layout used to eyeball an
        ensemble side by side.
        """
        if not isinstance(self.index, MultiIndex):
            raise TypeError("unstack requires a MultiIndex")
        num = self.index.level_number(
            level if level != -1 else self.index.nlevels - 1)
        moved = self.index.unique_level(num)
        remaining_index = self.index.droplevel(num)
        # unique remaining labels in first-seen order
        seen: dict[Any, int] = {}
        for lbl in remaining_index.values:
            seen.setdefault(lbl, len(seen))
        if isinstance(remaining_index, MultiIndex):
            new_index: Index = MultiIndex(list(seen),
                                          names=remaining_index.names)
        else:
            new_index = Index(list(seen), name=remaining_index.name)
        out = DataFrame(index=new_index)
        moved_values = [t[num] for t in self.index.values]
        for c in self._columns:
            col = self._data[c]
            for m in moved:
                key = (c, m) if not isinstance(c, tuple) else c + (m,)
                values: list[Any] = [None] * len(seen)
                for lbl, mv, v in zip(remaining_index.values,
                                      moved_values, col):
                    if mv == m:
                        values[seen[lbl]] = v
                out[key] = values
        return out

    def dropna(self, subset: Sequence[Hashable] | None = None) -> "DataFrame":
        cols = subset if subset is not None else self._columns
        mask = np.ones(len(self), dtype=bool)
        for c in cols:
            mask &= ~is_missing(self._data[c])
        return self._take_mask(mask)

    def fillna(self, value: Any) -> "DataFrame":
        out = self.copy()
        for c in out._columns:
            m = is_missing(out._data[c])
            if m.any():
                out._data[c][m] = value
        return out

    def to_numpy(self, columns: Sequence[Hashable] | None = None,
                 dtype=np.float64) -> np.ndarray:
        cols = list(columns) if columns is not None else self._columns
        return np.column_stack([self._data[c].astype(dtype) for c in cols])

    # ------------------------------------------------------------------
    # iteration & export
    # ------------------------------------------------------------------
    def iterrows(self) -> Iterator[tuple[Any, dict]]:
        for i, lbl in enumerate(self.index.values):
            yield lbl, {c: self._data[c][i] for c in self._columns}

    def itertuples(self) -> Iterator[tuple]:
        for i, lbl in enumerate(self.index.values):
            yield (lbl,) + tuple(self._data[c][i] for c in self._columns)

    def to_dict(self, orient: str = "dict") -> Any:
        if orient == "dict":
            return {
                c: dict(zip(self.index.values, self._data[c])) for c in self._columns
            }
        if orient == "list":
            return {c: list(self._data[c]) for c in self._columns}
        if orient == "records":
            return [
                {c: self._data[c][i] for c in self._columns} for i in range(len(self))
            ]
        raise ValueError(f"unknown orient {orient!r}")

    def to_string(self, max_rows: int = 40, float_fmt: str = "{:.6g}") -> str:
        from .display import format_frame

        return format_frame(self, max_rows=max_rows, float_fmt=float_fmt)

    def __repr__(self) -> str:
        return self.to_string()

    # ------------------------------------------------------------------
    # structural helpers used by Thicket composition
    # ------------------------------------------------------------------
    def column_nlevels(self) -> int:
        widths = {len(c) if isinstance(c, tuple) else 1 for c in self._columns}
        return max(widths) if widths else 1

    def top_level_columns(self) -> list[Hashable]:
        seen: dict[Hashable, None] = {}
        for c in self._columns:
            seen.setdefault(c[0] if isinstance(c, tuple) else c, None)
        return list(seen.keys())

    def add_column_level(self, label: Hashable) -> "DataFrame":
        """Prefix every column key with *label*, producing tuple keys."""
        out = DataFrame(index=self.index)
        for c in self._columns:
            key = (label,) + (c if isinstance(c, tuple) else (c,))
            out._data[key] = self._data[c]
            out._columns.append(key)
        return out

    def equals(self, other: "DataFrame") -> bool:
        if not isinstance(other, DataFrame):
            return False
        if self._columns != other._columns or not self.index.equals(other.index):
            return False
        for c in self._columns:
            a, b = self._data[c], other._data[c]
            if a.dtype.kind == "f" and b.dtype.kind == "f":
                if not np.allclose(a, b, equal_nan=True):
                    return False
            elif not all(x == y or (x is None and y is None) for x, y in zip(a, b)):
                return False
        return True
