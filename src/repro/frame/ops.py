"""Vectorized column kernels shared by Series, DataFrame and groupby.

All aggregations are NaN-aware: missing values (``np.nan`` in float
columns, ``None`` in object columns) are skipped, matching the
behaviour Thicket inherits from pandas.  Kernels take a raw numpy array
and return a scalar; the callers deal with index bookkeeping.
"""

from __future__ import annotations

from typing import Any, Callable

import numpy as np

from ..obs.core import get_telemetry

# Kernel-level call counters are too hot for spans; instead each call
# does a single `enabled` check against the telemetry singleton and,
# only when tracing, bumps a registry counter.
_telemetry = get_telemetry()

__all__ = [
    "is_missing",
    "coerce_column",
    "numeric_values",
    "AGGREGATIONS",
    "resolve_aggregation",
]


def is_missing(values: np.ndarray) -> np.ndarray:
    """Boolean mask of missing entries for float or object columns."""
    if values.dtype.kind == "f":
        return np.isnan(values)
    if values.dtype == object:
        out = np.empty(len(values), dtype=bool)
        for i, v in enumerate(values):
            out[i] = v is None or (isinstance(v, float) and np.isnan(v))
        return out
    return np.zeros(len(values), dtype=bool)


def coerce_column(values: Any, n: int | None = None) -> np.ndarray:
    """Coerce arbitrary input to a 1-D column array.

    Numeric input becomes ``float64``/``int64``/``bool``; anything else
    is stored as an object array.  Scalars broadcast to length *n*.
    """
    if np.isscalar(values) or values is None:
        if n is None:
            raise ValueError("need a length to broadcast a scalar column")
        if isinstance(values, (bool, np.bool_)):
            return np.full(n, bool(values), dtype=bool)
        if isinstance(values, (int, np.integer)):
            return np.full(n, int(values), dtype=np.int64)
        if isinstance(values, (float, np.floating)):
            return np.full(n, float(values), dtype=np.float64)
        arr = np.empty(n, dtype=object)
        arr[:] = values
        return arr
    if isinstance(values, np.ndarray) and values.ndim == 1:
        if values.dtype.kind in "ifb" or values.dtype == object:
            arr = values.copy()
        else:  # e.g. unicode dtype -> object so missing values can be mixed in
            arr = values.astype(object)
    else:
        values = list(values)
        arr = _infer_array(values)
    if n is not None and len(arr) != n:
        raise ValueError(f"column length {len(arr)} does not match frame length {n}")
    return arr


def _infer_array(values: list) -> np.ndarray:
    kinds = set()
    for v in values:
        if v is None:
            kinds.add("none")
        elif isinstance(v, (bool, np.bool_)):
            kinds.add("bool")
        elif isinstance(v, (int, np.integer)):
            kinds.add("int")
        elif isinstance(v, (float, np.floating)):
            kinds.add("float")
        else:
            kinds.add("object")
    if kinds <= {"bool"}:
        return np.asarray(values, dtype=bool)
    if kinds <= {"int"}:
        return np.asarray(values, dtype=np.int64)
    if kinds <= {"int", "float", "bool", "none"} and kinds & {"float", "int"}:
        return np.asarray(
            [np.nan if v is None else float(v) for v in values], dtype=np.float64
        )
    arr = np.empty(len(values), dtype=object)
    for i, v in enumerate(values):
        arr[i] = v
    return arr


def numeric_values(values: np.ndarray, drop_missing: bool = True,
                   drop_nonfinite: bool = False) -> np.ndarray:
    """Extract a float array from a column, optionally dropping missing.

    ``drop_nonfinite`` additionally drops ``±inf`` — used by the
    aggregated-statistics layer so a single corrupt ``inf`` metric in a
    sparse campaign table degrades to a missing value instead of
    poisoning every reduction over that node.
    """
    if _telemetry.enabled:
        _telemetry.metrics.increment("frame.ops.numeric_values")
    if values.dtype.kind in "ib":
        return values.astype(np.float64)
    if values.dtype.kind == "f":
        if drop_nonfinite:
            return values[np.isfinite(values)]
        return values[~np.isnan(values)] if drop_missing else values
    out = []
    for v in values:
        if v is None:
            continue
        if isinstance(v, (int, float, np.integer, np.floating)):
            fv = float(v)
            if drop_missing and np.isnan(fv):
                continue
            if drop_nonfinite and not np.isfinite(fv):
                continue
            out.append(fv)
        else:
            raise TypeError(f"non-numeric value {v!r} in numeric aggregation")
    return np.asarray(out, dtype=np.float64)


# ----------------------------------------------------------------------
# NaN-aware scalar aggregations
# ----------------------------------------------------------------------

def _agg_numeric(fn: Callable[[np.ndarray], float]) -> Callable[[np.ndarray], float]:
    def agg(values: np.ndarray) -> float:
        data = numeric_values(values)
        if len(data) == 0:
            return float("nan")
        return float(fn(data))

    return agg


def _first(values: np.ndarray) -> Any:
    mask = is_missing(values)
    for i in range(len(values)):
        if not mask[i]:
            return values[i]
    return None


def _last(values: np.ndarray) -> Any:
    mask = is_missing(values)
    for i in range(len(values) - 1, -1, -1):
        if not mask[i]:
            return values[i]
    return None


def _count(values: np.ndarray) -> int:
    return int((~is_missing(values)).sum())


def _nunique(values: np.ndarray) -> int:
    mask = is_missing(values)
    return len({values[i] for i in range(len(values)) if not mask[i]})


AGGREGATIONS: dict[str, Callable[[np.ndarray], Any]] = {
    "mean": _agg_numeric(np.mean),
    "median": _agg_numeric(np.median),
    "sum": _agg_numeric(np.sum),
    "min": _agg_numeric(np.min),
    "max": _agg_numeric(np.max),
    "std": _agg_numeric(lambda a: np.std(a, ddof=1) if len(a) > 1 else 0.0),
    "var": _agg_numeric(lambda a: np.var(a, ddof=1) if len(a) > 1 else 0.0),
    "first": _first,
    "last": _last,
    "count": _count,
    "nunique": _nunique,
}


def resolve_aggregation(how: str | Callable) -> Callable[[np.ndarray], Any]:
    """Map an aggregation name or callable to a column kernel."""
    if _telemetry.enabled:
        _telemetry.metrics.increment("frame.ops.aggregations_resolved")
    if callable(how):
        return how
    try:
        return AGGREGATIONS[how]
    except KeyError:
        raise ValueError(
            f"unknown aggregation {how!r}; expected one of {sorted(AGGREGATIONS)}"
        ) from None
