"""Append-only, checksummed history of recorded performance runs.

Each recorded run is one file under ``<root>/runs/`` carrying the
``repro-perfrun-v1`` envelope — the same ``format`` / ``checksum`` /
``payload`` discipline as the v2 thicket store (PR 3), written through
:func:`repro.ioutil.atomic_write_text` so a crash mid-record leaves
the history intact.  The payload holds the run's root spans (the
lossless flat-record form from :func:`repro.obs.spans_to_records`),
the metrics snapshot, and the run metadata (machine, commit,
timestamp, label); run ids are a monotonically increasing
``run-NNNNNN`` sequence, so the directory listing *is* the index and
there is no separate index file to corrupt.

``load_history()`` is the paper's "forest" applied to our own
benchmarks: every stored run's span tree becomes one profile (via
``obs.spans_to_graphframes``) and the runs compose into a single
multi-run ensemble Thicket whose metadata table carries each run's
context — ready for ``core.regression.compare_thickets``.
"""

from __future__ import annotations

import json
import platform
import subprocess
import time
from pathlib import Path
from typing import Any, Callable, Mapping, Sequence

from ..errors import CorruptStoreError, PersistenceError
from ..ioutil import atomic_write_text, canonical_json, sha256_of
from ..obs import counter as obs_counter
from ..obs import span as obs_span
from ..obs.core import Span, Telemetry
from ..obs.export import records_to_spans, spans_to_records

__all__ = ["PerfStore", "PerfRunInfo", "FORMAT_PERFRUN", "detect_commit"]

FORMAT_PERFRUN = "repro-perfrun-v1"

_RUN_PREFIX = "run-"
_RUN_DIGITS = 6


def detect_commit(cwd: "str | Path | None" = None) -> str | None:
    """Best-effort ``git rev-parse HEAD`` of *cwd* (None off a repo)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=cwd, capture_output=True,
            text=True, timeout=5.0)
    except (OSError, subprocess.TimeoutExpired):
        return None
    commit = out.stdout.strip()
    return commit if out.returncode == 0 and commit else None


class PerfRunInfo:
    """Index entry for one stored run: id, path, and its metadata."""

    __slots__ = ("run_id", "path", "meta")

    def __init__(self, run_id: str, path: Path, meta: dict[str, Any]):
        self.run_id = run_id
        self.path = path
        self.meta = meta

    def to_dict(self) -> dict[str, Any]:
        return {"run_id": self.run_id, "path": str(self.path),
                "meta": dict(self.meta)}

    def __repr__(self) -> str:
        return f"PerfRunInfo({self.run_id!r}, meta={self.meta!r})"


class PerfStore:
    """On-disk history of recorded performance runs.

    Parameters
    ----------
    root:
        Directory of the store (created on first record).
    clock:
        Injectable wall-clock epoch source for run timestamps
        (default ``time.time``; injected by tests per RPR004).

    The store is append-only: :meth:`record` assigns the next sequence
    id and writes one immutable run file; :meth:`prune` is the only
    destructive operation (retention, oldest-first).
    """

    def __init__(self, root: "str | Path", *,
                 clock: Callable[[], float] | None = None):
        self.root = Path(root)
        self._clock = clock or time.time

    @property
    def runs_dir(self) -> Path:
        """Directory holding one ``run-NNNNNN.json`` file per run."""
        return self.root / "runs"

    # -- write ---------------------------------------------------------
    def record(self, source: "Telemetry | Sequence[Span]",
               meta: Mapping[str, Any] | None = None,
               label: str | None = None) -> PerfRunInfo:
        """Append one run to the history.

        *source* is a :class:`~repro.obs.Telemetry` (its finished root
        spans and metrics snapshot are stored) or a sequence of root
        spans.  *meta* scalars are stored with the run and later
        surface as metadata columns on the history ensemble; machine,
        commit, and timestamp are filled in automatically when absent.
        Raises :class:`PersistenceError` when there are no completed
        spans to record.
        """
        with obs_span("perf.store.record"):
            if isinstance(source, Telemetry):
                roots = source.finished_spans()
                snap = source.metrics.snapshot()
                metrics = snap if any(snap.values()) else None
            else:
                roots = list(source)
                metrics = None
            roots = [r for r in roots if r.end is not None]
            if not roots:
                raise PersistenceError(
                    "refusing to record a run with no completed spans",
                    source=self.root, stage="record")

            run_meta: dict[str, Any] = {
                "machine": platform.node(),
                "commit": detect_commit(),
                "timestamp": float(self._clock()),
                "python": platform.python_version(),
                "roots": len(roots),
                "spans": sum(1 for r in roots for _ in r.walk()),
            }
            if label is not None:
                run_meta["label"] = str(label)
            for key, value in (meta or {}).items():
                if isinstance(value, (str, int, float, bool)) or value is None:
                    run_meta[str(key)] = value

            run_id = self._next_run_id()
            payload = {
                "meta": run_meta,
                "spans": spans_to_records(roots),
                "metrics": metrics or {},
            }
            doc = {
                "format": FORMAT_PERFRUN,
                "run_id": run_id,
                "checksum": sha256_of(canonical_json(payload)),
                "payload": payload,
            }
            path = self.runs_dir / f"{run_id}.json"
            atomic_write_text(path, json.dumps(doc, sort_keys=True))
            obs_counter("perf.store.runs_recorded")
            return PerfRunInfo(run_id, path, run_meta)

    def _next_run_id(self) -> str:
        last = 0
        for p in self._run_paths():
            try:
                last = max(last, int(p.stem[len(_RUN_PREFIX):]))
            except ValueError:
                continue
        return f"{_RUN_PREFIX}{last + 1:0{_RUN_DIGITS}d}"

    # -- read ----------------------------------------------------------
    def _run_paths(self) -> list[Path]:
        if not self.runs_dir.is_dir():
            return []
        return sorted(self.runs_dir.glob(f"{_RUN_PREFIX}*.json"))

    def _load_doc(self, path: Path) -> dict[str, Any]:
        try:
            text = path.read_text()
        except OSError as e:
            raise PersistenceError(f"cannot read perf run: {e}",
                                   source=path, stage="load") from e
        try:
            doc = json.loads(text)
        except json.JSONDecodeError as e:
            raise CorruptStoreError(
                f"perf run is not valid JSON (truncated?): {e}",
                source=path, stage="load") from e
        if not isinstance(doc, dict) or doc.get("format") != FORMAT_PERFRUN:
            raise CorruptStoreError(
                f"not a {FORMAT_PERFRUN} document "
                f"(format={doc.get('format') if isinstance(doc, dict) else None!r})",
                source=path, stage="load")
        payload = doc.get("payload")
        if not isinstance(payload, dict):
            raise CorruptStoreError("perf run has no payload object",
                                    source=path)
        actual = sha256_of(canonical_json(payload))
        if doc.get("checksum") != actual:
            raise CorruptStoreError(
                f"checksum mismatch: stored {doc.get('checksum')!r}, "
                f"computed {actual!r} — the run file was modified or "
                f"corrupted after it was written", source=path)
        return doc

    def runs(self) -> list[PerfRunInfo]:
        """All stored runs, oldest first (checksums verified)."""
        out = []
        for path in self._run_paths():
            doc = self._load_doc(path)
            out.append(PerfRunInfo(doc.get("run_id", path.stem), path,
                                   dict(doc["payload"].get("meta", {}))))
        return out

    def load_run(self, run_id: str) -> tuple[list[Span], dict, dict]:
        """One stored run as ``(root spans, meta, metrics snapshot)``."""
        path = self.runs_dir / f"{run_id}.json"
        if not path.exists():
            raise PersistenceError(
                f"no such perf run {run_id!r} in {self.root}",
                source=path, stage="load")
        doc = self._load_doc(path)
        payload = doc["payload"]
        return (records_to_spans(payload.get("spans", [])),
                dict(payload.get("meta", {})),
                dict(payload.get("metrics", {})))

    def load_history(self, limit: int | None = None,
                     exclude: Sequence[str] = ()):
        """Compose stored runs into one multi-run ensemble Thicket.

        Every run's root spans become profiles (one per root, via
        ``obs.spans_to_graphframes``); run metadata lands as
        ``run.<key>`` metadata columns and the profile index is
        ``"<run_id>/<root index>"``.  ``limit`` keeps only the most
        recent N runs; ``exclude`` skips run ids (e.g. the candidate
        itself).  Raises :class:`PersistenceError` when the history is
        empty.
        """
        from ..core.thicket import Thicket
        from ..obs.dogfood import WALL_EXC, spans_to_graphframes

        with obs_span("perf.store.load_history"):
            infos = [i for i in self.runs() if i.run_id not in set(exclude)]
            if limit is not None:
                infos = infos[-limit:]
            if not infos:
                raise PersistenceError(
                    f"perf store {self.root} has no recorded runs",
                    source=self.root, stage="load")
            gfs, pids = [], []
            for info in infos:
                roots, meta, _metrics = self.load_run(info.run_id)
                for idx, gf in enumerate(spans_to_graphframes(roots)):
                    gf.metadata["run.id"] = info.run_id
                    for key, value in meta.items():
                        gf.metadata.setdefault(f"run.{key}", value)
                    gfs.append(gf)
                    pids.append(f"{info.run_id}/{idx}")
            tk = Thicket._compose(gfs, profile_ids=pids)
            tk.default_metric = WALL_EXC
            tk.provenance["perf_store"] = {
                "root": str(self.root),
                "runs": [i.run_id for i in infos],
            }
            return tk

    # -- retention -----------------------------------------------------
    def prune(self, keep: int) -> list[str]:
        """Drop the oldest runs beyond the newest *keep*; returns the
        removed run ids."""
        if keep < 0:
            raise ValueError(f"keep must be non-negative, got {keep}")
        paths = self._run_paths()
        victims = paths[:max(0, len(paths) - keep)]
        removed = []
        for path in victims:
            path.unlink()
            removed.append(path.stem)
        if removed:
            obs_counter("perf.store.runs_pruned", len(removed))
        return removed

    def __len__(self) -> int:
        return len(self._run_paths())

    def __repr__(self) -> str:
        return f"PerfStore({str(self.root)!r}, runs={len(self)})"
