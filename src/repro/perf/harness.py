"""The standard traced workload the sentinel measures.

``repro perf record`` / ``check`` and ``benchmarks/perf_harness.py``
all execute the same end-to-end slice of the library so recorded runs
are comparable across sessions: generate a (scaled) RAJAPerf campaign,
ingest it through the fault-tolerant pipeline, aggregate statistics,
run a call-path query, and render the tree.  Every phase sits under an
explicit ``perf.workload.*`` span, and the pipeline's own
instrumentation (``ingest.*``, ``query.*``) nests beneath — so a
slowdown injected into any layer surfaces as a named call-tree node in
the sentinel's verdict.

Profile generation is reused, not repeated: when the work directory
already holds profiles they are ingested as-is.  That keeps record /
check cycles fast and — deliberately — lets
:func:`repro.workloads.inject_slowdown` wrap a profile file between
runs to stage a reproducible regression.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Sequence

from ..obs import Span, get_telemetry
from ..obs import span as obs_span

__all__ = ["run_campaign_workload", "workload_roots", "DEFAULT_SCALE"]

DEFAULT_SCALE = 0.1


def run_campaign_workload(work_dir: "str | Path",
                          scale: float = DEFAULT_SCALE) -> dict[str, Any]:
    """Run one traced pass of the standard workload.

    Profiles live under ``<work_dir>/profiles`` (generated on first
    use, reused afterwards).  Tracing must already be enabled for the
    spans to be recorded; the function itself works either way.
    Returns a summary dict (profile/node/row counts per phase).
    """
    from ..core import stats
    from ..query import QueryMatcher
    from ..workloads import load_campaign, write_raja_campaign
    from ..workloads.campaign import RAJA_CAMPAIGN

    work_dir = Path(work_dir)
    profile_dir = work_dir / "profiles"
    info: dict[str, Any] = {"work_dir": str(work_dir), "scale": scale}

    with obs_span("perf.workload") as root:
        with obs_span("perf.workload.generate"):
            existing = sorted(profile_dir.glob("*.json"))
            if existing:
                info["profiles"] = len(existing)
                info["generated"] = False
            else:
                paths = write_raja_campaign(
                    profile_dir, campaign=RAJA_CAMPAIGN[:1], scale=scale)
                info["profiles"] = len(paths)
                info["generated"] = True

        with obs_span("perf.workload.ingest"):
            tk, report = load_campaign(profile_dir)
            info["ingested"] = len(tk.profile)
            info["quarantined"] = report.n_quarantined

        with obs_span("perf.workload.stats"):
            metric = tk.default_metric
            stats.mean(tk, [metric])
            stats.percentiles(tk, [metric])
            info["nodes"] = len(tk.statsframe.index.values)

        with obs_span("perf.workload.query"):
            matched = tk.query(
                QueryMatcher().match(".").rel("*"))
            info["query_nodes"] = sum(1 for _ in matched.graph)

        with obs_span("perf.workload.render"):
            info["tree_chars"] = len(tk.tree(metric_column=metric))

        root.set("scale", scale)
        root.set("profiles", info["profiles"])
        root.set("nodes", info["nodes"])
    return info


def workload_roots(work_dir: "str | Path", repeats: int = 1,
                   scale: float = DEFAULT_SCALE,
                   warmup: bool = True) -> "list[Span]":
    """Run the workload *repeats* times and return the new root spans.

    Enables the global telemetry for the duration (restoring the prior
    enabled state afterwards) and slices off only the spans produced
    here, so callers embedded in larger traced programs do not pick up
    unrelated roots.  This is what ``repro perf record`` stores.

    With ``warmup`` (the default) one untimed pass runs first: it pays
    the one-off costs — imports, profile generation, allocator warm-up
    — that would otherwise make the first recorded run of a process
    look slower than every later one and poison the baseline.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be at least 1, got {repeats}")
    t = get_telemetry()
    was_enabled = t.enabled
    if warmup:
        t.disable()
        try:
            run_campaign_workload(work_dir, scale=scale)
        finally:
            if was_enabled:
                t.enable()
    t.enable()
    before = len(t.finished_spans())
    try:
        for _ in range(repeats):
            run_campaign_workload(work_dir, scale=scale)
    finally:
        if not was_enabled:
            t.disable()
    return t.finished_spans()[before:]
