"""The regression watchdog: candidate run vs. baseline history.

:func:`check_regression` feeds a baseline ensemble and a candidate
ensemble through :func:`repro.core.regression.compare_thickets` and
applies a frozen :class:`PerfPolicy` to the node-by-node table,
producing a typed :class:`PerfVerdict`: which call-tree nodes got
slower (regressions), which got faster (improvements), and which
appeared or vanished between the two ensembles.  :func:`check_store`
is the one-call form used by ``repro perf check``: load the stored
history as the baseline, compare the candidate, return the verdict.

Detection follows ``find_regressions``'s philosophy — a node alerts
when it exceeds the relative-change threshold and the change is either
statistically significant or undecidable (single-run candidates have
NaN p-values; nightly CI still needs to alert on them) — plus an
absolute floor (``min_seconds``) so microsecond-level nodes cannot trip
the gate on scheduler noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Any, Sequence

from ..obs import span as obs_span
from ..obs.dogfood import WALL_INC
from .store import PerfStore

__all__ = ["PerfPolicy", "PerfVerdict", "DEFAULT_POLICY",
           "check_regression", "check_store"]


@dataclass(frozen=True)
class PerfPolicy:
    """Frozen knobs deciding when a node change counts as a regression.

    ``metric`` is the Thicket metric column compared (inclusive wall
    time by default — the quantity users feel).  A node is flagged when
    its candidate mean exceeds the baseline mean by more than
    ``min_relative_change`` (fraction), the baseline mean is at least
    ``min_seconds`` (ignore sub-noise nodes), each side has at least
    ``min_samples`` profiles, and the Welch's-t p-value is either below
    ``alpha`` or NaN (undecidable — single-run ensembles still alert).
    Improvements mirror the same thresholds on the other side.
    """

    metric: str = WALL_INC
    alpha: float = 0.05
    min_relative_change: float = 0.5
    min_seconds: float = 0.01
    min_samples: int = 1

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {self.alpha}")
        if self.min_relative_change <= 0:
            raise ValueError("min_relative_change must be positive, got "
                             f"{self.min_relative_change}")
        if self.min_seconds < 0:
            raise ValueError(
                f"min_seconds must be non-negative, got {self.min_seconds}")
        if self.min_samples < 1:
            raise ValueError(
                f"min_samples must be at least 1, got {self.min_samples}")

    def with_overrides(self, **kwargs: Any) -> "PerfPolicy":
        """A copy with the given fields replaced (None values ignored)."""
        return replace(self, **{k: v for k, v in kwargs.items()
                                if v is not None})

    def to_dict(self) -> dict[str, Any]:
        return {"metric": self.metric, "alpha": self.alpha,
                "min_relative_change": self.min_relative_change,
                "min_seconds": self.min_seconds,
                "min_samples": self.min_samples}


DEFAULT_POLICY = PerfPolicy()


@dataclass
class PerfVerdict:
    """Outcome of one sentinel comparison.

    ``regressions`` / ``improvements`` are per-node dicts (name, means,
    relative change, p-value, run counts) sorted worst-first /
    best-first; ``new_nodes`` / ``vanished_nodes`` are call-tree node
    names present on only one side.  ``ok`` is the CI gate: True iff no
    regressions were detected.
    """

    policy: PerfPolicy
    regressions: list[dict[str, Any]] = field(default_factory=list)
    improvements: list[dict[str, Any]] = field(default_factory=list)
    new_nodes: list[str] = field(default_factory=list)
    vanished_nodes: list[str] = field(default_factory=list)
    nodes_compared: int = 0
    baseline_runs: int = 0
    candidate_runs: int = 0

    @property
    def ok(self) -> bool:
        """True when the candidate passes (no regressions flagged)."""
        return not self.regressions

    def to_dict(self) -> dict[str, Any]:
        return {
            "ok": self.ok,
            "policy": self.policy.to_dict(),
            "nodes_compared": self.nodes_compared,
            "baseline_runs": self.baseline_runs,
            "candidate_runs": self.candidate_runs,
            "regressions": [dict(r) for r in self.regressions],
            "improvements": [dict(r) for r in self.improvements],
            "new_nodes": list(self.new_nodes),
            "vanished_nodes": list(self.vanished_nodes),
        }

    def summary(self) -> str:
        """Multi-line human-readable report (worst regressions first)."""
        head = "PASS" if self.ok else "REGRESSION"
        lines = [
            f"perf sentinel: {head} — {self.nodes_compared} nodes compared, "
            f"{self.baseline_runs} baseline vs {self.candidate_runs} "
            f"candidate run(s) on {self.policy.metric!r}",
        ]
        for row in self.regressions:
            lines.append(
                f"  REGRESSED {row['node']}: "
                f"{row['baseline_mean']:.6f}s -> {row['candidate_mean']:.6f}s "
                f"({row['relative_change']:+.1%}, p={row['p_value']:.3g})")
        for row in self.improvements:
            lines.append(
                f"  improved  {row['node']}: "
                f"{row['baseline_mean']:.6f}s -> {row['candidate_mean']:.6f}s "
                f"({row['relative_change']:+.1%})")
        if self.new_nodes:
            lines.append(f"  new nodes: {', '.join(self.new_nodes)}")
        if self.vanished_nodes:
            lines.append(
                f"  vanished nodes: {', '.join(self.vanished_nodes)}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (f"PerfVerdict(ok={self.ok}, "
                f"regressions={len(self.regressions)}, "
                f"improvements={len(self.improvements)}, "
                f"nodes={self.nodes_compared})")


def _node_names(tk, metric: str) -> set[str]:
    """Node names with at least one non-NaN value for *metric*."""
    names: set[str] = set()
    col = tk.dataframe.column(metric)
    for t, v in zip(tk.dataframe.index.values, col):
        if v is None or (isinstance(v, float) and math.isnan(v)):
            continue
        names.add(t[0].frame.name)
    return names


def check_regression(baseline, candidate,
                     policy: PerfPolicy = DEFAULT_POLICY) -> PerfVerdict:
    """Compare two thickets under *policy* and return the verdict.

    *baseline* and *candidate* are :class:`repro.core.Thicket`
    ensembles (typically the stored history vs. a fresh run converted
    through ``obs.to_thicket``).  Comparison is by call-tree node name,
    so ensembles from different recording sessions line up.
    """
    from ..core.regression import compare_thickets

    with obs_span("perf.sentinel.check"):
        table = compare_thickets(baseline, candidate, policy.metric,
                                 alpha=policy.alpha)
        shared = set(table.index.values)
        base_names = _node_names(baseline, policy.metric)
        cand_names = _node_names(candidate, policy.metric)

        verdict = PerfVerdict(
            policy=policy,
            new_nodes=sorted(cand_names - base_names),
            vanished_nodes=sorted(base_names - cand_names),
            nodes_compared=len(shared),
            baseline_runs=len(baseline.profile),
            candidate_runs=len(candidate.profile),
        )

        columns = {col: table.column(col) for col in table.columns}
        for idx, name in enumerate(table.index.values):
            row = {col: values[idx] for col, values in columns.items()}
            b_mean = float(row["baseline_mean"])
            c_mean = float(row["candidate_mean"])
            rel = float(row["relative_change"])
            p = float(row["p_value"])
            entry = {
                "node": name,
                "baseline_mean": b_mean,
                "candidate_mean": c_mean,
                "relative_change": rel,
                "p_value": p,
                "baseline_runs": int(row["baseline_runs"]),
                "candidate_runs": int(row["candidate_runs"]),
            }
            if (entry["baseline_runs"] < policy.min_samples
                    or entry["candidate_runs"] < policy.min_samples):
                continue
            decisive = bool(row["significant"]) or math.isnan(p)
            if not decisive:
                continue
            if (rel > policy.min_relative_change
                    and b_mean >= policy.min_seconds):
                verdict.regressions.append(entry)
            elif (rel < -policy.min_relative_change
                    and b_mean >= policy.min_seconds):
                verdict.improvements.append(entry)

        verdict.regressions.sort(key=lambda r: r["relative_change"],
                                 reverse=True)
        verdict.improvements.sort(key=lambda r: r["relative_change"])
        return verdict


def check_store(store: "PerfStore | str", candidate,
                policy: PerfPolicy = DEFAULT_POLICY,
                limit: int | None = None,
                exclude: Sequence[str] = ()) -> PerfVerdict:
    """Check a candidate against a store's recorded history.

    *store* is a :class:`~repro.perf.store.PerfStore` (or its root
    path).  *candidate* is anything ``obs.to_thicket`` accepts — a
    :class:`~repro.obs.Telemetry`, root spans, or a trace file path —
    or a stored run id string (``run-NNNNNN``), which is loaded from
    the store and excluded from the baseline automatically.
    """
    from ..obs import to_thicket

    if not isinstance(store, PerfStore):
        store = PerfStore(store)
    exclude = list(exclude)
    if isinstance(candidate, str) and candidate.startswith("run-"):
        roots, _meta, _metrics = store.load_run(candidate)
        exclude.append(candidate)
        candidate_tk = to_thicket(roots)
    else:
        candidate_tk = to_thicket(candidate)
    baseline_tk = store.load_history(limit=limit, exclude=exclude)
    return check_regression(baseline_tk, candidate_tk, policy)
