"""``repro.perf`` — the self-hosted performance sentinel.

The paper's §6 workflow — collect profiles from recurring runs,
compose them into an ensemble, ask "which regions got slower since the
baseline?" — applied to this library itself:

* :class:`PerfStore` (``store.py``) persists each recorded run (an
  ``obs`` trace converted through ``obs.to_thicket``) into an
  append-only, checksummed on-disk history with machine / commit /
  timestamp metadata, retention pruning, and ``load_history()``
  returning the composed multi-run baseline ensemble Thicket.
* :class:`PerfPolicy` / :class:`PerfVerdict` / :func:`check_regression`
  (``sentinel.py``) compare a candidate run against that baseline via
  :func:`repro.core.regression.compare_thickets` and produce a typed
  verdict: regressions, improvements, new and vanished nodes.
* :func:`run_campaign_workload` (``harness.py``) is the standard
  traced workload — campaign ingest + stats + query — that ``repro
  perf record|check`` and ``benchmarks/perf_harness.py`` execute.

CLI: ``repro perf record|compare|check|history`` with exit code 6 on a
detected regression; ``scripts/check.sh`` runs the loop as a CI gate.
"""

from .harness import run_campaign_workload, workload_roots
from .sentinel import (
    DEFAULT_POLICY,
    PerfPolicy,
    PerfVerdict,
    check_regression,
    check_store,
)
from .store import PerfRunInfo, PerfStore

__all__ = [
    "PerfStore", "PerfRunInfo",
    "PerfPolicy", "PerfVerdict", "DEFAULT_POLICY",
    "check_regression", "check_store",
    "run_campaign_workload", "workload_roots",
]
