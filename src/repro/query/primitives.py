"""Query-node primitives for the Call Path Query Language.

A query is a sequence of *query nodes*; each query node pairs a
**quantifier** (how many consecutive call-tree nodes it may match) with
a **predicate** (what must hold for a call-tree node to match).  This
mirrors Hatchet's query language as used by Thicket (§4.1.3, Fig. 8).

Quantifiers:

=========  =========================
``"."``    exactly one node
``"*"``    zero or more nodes
``"+"``    one or more nodes
``int k``  exactly *k* nodes
=========  =========================
"""

from __future__ import annotations

from typing import Any, Callable

__all__ = ["QueryNode", "parse_quantifier", "attr_predicate", "attr_refs",
           "AttrRef"]

Predicate = Callable[[Any], bool]

_ORDER_OPS = {"<", "<=", ">", ">="}


class AttrRef:
    """A statically known attribute reference inside a predicate.

    Query predicates are closures at match time, which makes them
    opaque to static validation.  The string and object dialects
    therefore also record, per query node, which column each
    comparison touches, the operator, and the literal — enough for
    :func:`repro.query.validate_query` to cross-check a query against
    a thicket's tables before any matching runs.

    ``op`` is normalised to the string-dialect spelling
    (``= != < <= > >= =~``); ``kind`` classifies it as ``"regex"``,
    ``"order"``, or ``"equality"``.
    """

    __slots__ = ("attr", "op", "literal")

    def __init__(self, attr: Any, op: str, literal: Any):
        self.attr = attr
        self.op = op
        self.literal = literal

    @property
    def kind(self) -> str:
        """Predicate class: ``"regex"``, ``"order"``, or ``"equality"``."""
        if self.op == "=~":
            return "regex"
        if self.op in _ORDER_OPS:
            return "order"
        return "equality"

    def __repr__(self) -> str:
        return f"AttrRef({self.attr!r} {self.op} {self.literal!r})"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, AttrRef)
                and (self.attr, self.op, self.literal)
                == (other.attr, other.op, other.literal))


def _always_true(_row: Any) -> bool:
    return True


def parse_quantifier(quantifier: str | int) -> tuple[int, int | None]:
    """Convert a quantifier spec to ``(min_count, max_count)``.

    ``max_count`` is ``None`` for unbounded quantifiers.
    """
    if isinstance(quantifier, bool):
        raise TypeError("quantifier may not be a bool")
    if isinstance(quantifier, int):
        if quantifier < 0:
            raise ValueError(f"negative quantifier {quantifier}")
        return (quantifier, quantifier)
    if quantifier == ".":
        return (1, 1)
    if quantifier == "*":
        return (0, None)
    if quantifier == "+":
        return (1, None)
    raise ValueError(f"unknown quantifier {quantifier!r}")


class QueryNode:
    """One step of a query: quantifier bounds plus a predicate.

    ``refs`` carries the :class:`AttrRef` records of the predicate when
    it came from a dialect with statically known structure (string /
    object dialect); it is ``None`` for opaque fluent-API callables,
    in which case validation can only check quantifier structure.
    """

    __slots__ = ("min_count", "max_count", "predicate", "quantifier", "refs")

    def __init__(self, quantifier: str | int = ".",
                 predicate: Predicate | None = None,
                 refs: "list[AttrRef] | None" = None):
        self.quantifier = quantifier
        self.min_count, self.max_count = parse_quantifier(quantifier)
        self.predicate = predicate or _always_true
        self.refs = refs

    def matches(self, row: Any) -> bool:
        """Whether one node's attribute row satisfies the predicate."""
        return bool(self.predicate(row))

    def __repr__(self) -> str:
        return f"QueryNode({self.quantifier!r})"


def attr_predicate(attrs: dict[str, Any]) -> Predicate:
    """Build a predicate from an attribute spec dict (the object dialect).

    Spec values may be:

    * an exact value (``{"name": "main"}``);
    * a regex string prefixed with ``"~"`` (full-match);
    * a comparison string for numeric columns (``{"time": "> 0.5"}``).

    The predicate receives the node's *row view* — a mapping from column
    name to either a scalar (single profile) or a Series of per-profile
    values (ensembles); for Series, **all** profiles must satisfy the
    spec (Thicket's `.all()` semantics).
    """
    import re

    def check_scalar(value: Any, spec: Any) -> bool:
        if isinstance(spec, str) and spec.startswith("~"):
            return value is not None and re.fullmatch(spec[1:], str(value)) is not None
        if isinstance(spec, str) and spec[:2].strip() in {"<", ">", "<=", ">=", "==", "!="}:
            op, _, rhs = spec.partition(" ")
            rhs_v = float(rhs)
            v = float(value)
            return {
                "<": v < rhs_v, "<=": v <= rhs_v, ">": v > rhs_v,
                ">=": v >= rhs_v, "==": v == rhs_v, "!=": v != rhs_v,
            }[op]
        return value == spec

    def predicate(row: Any) -> bool:
        for key, spec in attrs.items():
            try:
                value = row[key]
            except (KeyError, TypeError):
                return False
            if hasattr(value, "apply") and hasattr(value, "all"):
                if not value.apply(lambda v: check_scalar(v, spec)).all():
                    return False
            elif not check_scalar(value, spec):
                return False
        return True

    return predicate


def attr_refs(attrs: dict[str, Any]) -> list[AttrRef]:
    """The :class:`AttrRef` records of an object-dialect attribute spec.

    Mirrors the spec interpretation of :func:`attr_predicate`: a
    ``"~regex"`` string becomes a ``=~`` ref, a ``"< 0.5"`` comparison
    string becomes an order/equality ref on the parsed number, and any
    other value an exact-equality ref.
    """
    refs = []
    for key, spec in attrs.items():
        if isinstance(spec, str) and spec.startswith("~"):
            refs.append(AttrRef(key, "=~", spec[1:]))
        elif (isinstance(spec, str)
              and spec[:2].strip() in {"<", ">", "<=", ">=", "==", "!="}):
            op, _, rhs = spec.partition(" ")
            try:
                rhs_v: Any = float(rhs)
            except ValueError:
                rhs_v = rhs
            refs.append(AttrRef(key, {"==": "=", "!=": "!="}.get(op, op),
                                rhs_v))
        else:
            refs.append(AttrRef(key, "=", spec))
    return refs
