"""Query-node primitives for the Call Path Query Language.

A query is a sequence of *query nodes*; each query node pairs a
**quantifier** (how many consecutive call-tree nodes it may match) with
a **predicate** (what must hold for a call-tree node to match).  This
mirrors Hatchet's query language as used by Thicket (§4.1.3, Fig. 8).

Quantifiers:

=========  =========================
``"."``    exactly one node
``"*"``    zero or more nodes
``"+"``    one or more nodes
``int k``  exactly *k* nodes
=========  =========================
"""

from __future__ import annotations

from typing import Any, Callable

__all__ = ["QueryNode", "parse_quantifier", "attr_predicate"]

Predicate = Callable[[Any], bool]


def _always_true(_row: Any) -> bool:
    return True


def parse_quantifier(quantifier: str | int) -> tuple[int, int | None]:
    """Convert a quantifier spec to ``(min_count, max_count)``.

    ``max_count`` is ``None`` for unbounded quantifiers.
    """
    if isinstance(quantifier, bool):
        raise TypeError("quantifier may not be a bool")
    if isinstance(quantifier, int):
        if quantifier < 0:
            raise ValueError(f"negative quantifier {quantifier}")
        return (quantifier, quantifier)
    if quantifier == ".":
        return (1, 1)
    if quantifier == "*":
        return (0, None)
    if quantifier == "+":
        return (1, None)
    raise ValueError(f"unknown quantifier {quantifier!r}")


class QueryNode:
    """One step of a query: quantifier bounds plus a predicate."""

    __slots__ = ("min_count", "max_count", "predicate", "quantifier")

    def __init__(self, quantifier: str | int = ".",
                 predicate: Predicate | None = None):
        self.quantifier = quantifier
        self.min_count, self.max_count = parse_quantifier(quantifier)
        self.predicate = predicate or _always_true

    def matches(self, row: Any) -> bool:
        return bool(self.predicate(row))

    def __repr__(self) -> str:
        return f"QueryNode({self.quantifier!r})"


def attr_predicate(attrs: dict[str, Any]) -> Predicate:
    """Build a predicate from an attribute spec dict (the object dialect).

    Spec values may be:

    * an exact value (``{"name": "main"}``);
    * a regex string prefixed with ``"~"`` (full-match);
    * a comparison string for numeric columns (``{"time": "> 0.5"}``).

    The predicate receives the node's *row view* — a mapping from column
    name to either a scalar (single profile) or a Series of per-profile
    values (ensembles); for Series, **all** profiles must satisfy the
    spec (Thicket's `.all()` semantics).
    """
    import re

    def check_scalar(value: Any, spec: Any) -> bool:
        if isinstance(spec, str) and spec.startswith("~"):
            return value is not None and re.fullmatch(spec[1:], str(value)) is not None
        if isinstance(spec, str) and spec[:2].strip() in {"<", ">", "<=", ">=", "==", "!="}:
            op, _, rhs = spec.partition(" ")
            rhs_v = float(rhs)
            v = float(value)
            return {
                "<": v < rhs_v, "<=": v <= rhs_v, ">": v > rhs_v,
                ">=": v >= rhs_v, "==": v == rhs_v, "!=": v != rhs_v,
            }[op]
        return value == spec

    def predicate(row: Any) -> bool:
        for key, spec in attrs.items():
            try:
                value = row[key]
            except (KeyError, TypeError):
                return False
            if hasattr(value, "apply") and hasattr(value, "all"):
                if not value.apply(lambda v: check_scalar(v, spec)).all():
                    return False
            elif not check_scalar(value, spec):
                return False
        return True

    return predicate
