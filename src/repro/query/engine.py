"""Path-matching engine: regex-style matching of queries over call trees.

A query matches a *downward path* (contiguous parent→child chain).
Matching starts at any node; the union of all nodes on all matched
paths is the result (those are the rows Thicket keeps).  The engine is
a backtracking walk with per-(node, query-position) memoization of
failures, linear in practice on call trees.
"""

from __future__ import annotations

from typing import Any, Callable

from ..obs import counter as obs_counter
from ..obs import span as obs_span
from .primitives import QueryNode

__all__ = ["match_graph", "match_paths"]


def match_paths(graph, query: list[QueryNode],
                row_view: Callable[[Any], Any]) -> list[tuple]:
    """All matched paths, each a tuple of call-tree nodes."""
    with obs_span("query.match_paths", query_len=len(query)) as s:
        results, n_evals = _match_paths(graph, query, row_view)
        s.set("paths", len(results))
        obs_counter("query.predicate_evals", n_evals)
        obs_counter("query.paths_matched", len(results))
    return results


def _match_paths(graph, query: list[QueryNode],
                 row_view: Callable[[Any], Any]) -> tuple[list[tuple], int]:
    pred_cache: dict[tuple[int, int], bool] = {}

    def satisfied(node, qi: int) -> bool:
        key = (id(node), qi)
        if key not in pred_cache:
            pred_cache[key] = query[qi].matches(row_view(node))
        return pred_cache[key]

    results: list[tuple] = []

    def walk(node, qi: int, taken: int, path: tuple) -> None:
        """Try to extend *path* with *node* against query node *qi*."""
        q = query[qi]
        # Option A: skip to the next query node without consuming, if the
        # current one already satisfied its minimum.
        if taken >= q.min_count and qi + 1 < len(query):
            walk(node, qi + 1, 0, path)
        # Option B: consume this node for the current query node.
        if (q.max_count is None or taken < q.max_count) and satisfied(node, qi):
            new_path = path + (node,)
            new_taken = taken + 1
            if qi == len(query) - 1 and new_taken >= q.min_count:
                results.append(new_path)
            for child in node.children:
                walk(child, qi, new_taken, new_path)

    def start(node) -> None:
        # a path may begin at this node with query position 0, or, when
        # leading query nodes allow zero matches, at a later position.
        qi = 0
        walk(node, qi, 0, ())
        while qi + 1 < len(query) and query[qi].min_count == 0:
            qi += 1
            walk(node, qi, 0, ())

    for node in graph.traverse():
        start(node)
    return results, len(pred_cache)


def match_graph(graph, query: list[QueryNode],
                row_view: Callable[[Any], Any]) -> list:
    """Union of nodes over all matched paths, in graph traversal order."""
    if not query:
        return []
    with obs_span("query.match_graph", query_len=len(query)) as s:
        matched: set[int] = set()
        keep = []
        for path in match_paths(graph, query, row_view):
            for node in path:
                if id(node) not in matched:
                    matched.add(id(node))
                    keep.append(node)
        order = {id(n): i for i, n in enumerate(graph.traverse())}
        keep.sort(key=lambda n: order[id(n)])
        s.set("matched_nodes", len(keep))
    return keep
