"""The fluent QueryMatcher API (paper Fig. 8) and the object dialect.

Example — find paths ``Base_CUDA → ... → *block_128`` exactly as in the
paper::

    query = (
        QueryMatcher()
        .match(".", lambda row: row["name"].apply(
            lambda x: x == "Base_CUDA").all())
        .rel("*")
        .rel(".", lambda row: row["name"].apply(
            lambda x: x.endswith("block_128")).all())
    )

Object dialect — the same query as data::

    query = QueryMatcher.from_spec([
        (".", {"name": "Base_CUDA"}),
        ("*",),
        (".", {"name": "~.*block_128"}),
    ])
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, Sequence

from .primitives import AttrRef, QueryNode, attr_predicate, attr_refs

__all__ = ["QueryMatcher"]


class QueryMatcher:
    """A compiled sequence of query nodes.

    ``unbound_refs`` holds ``(identifier, AttrRef)`` pairs for WHERE
    comparisons that name an identifier never bound in ``MATCH`` (only
    the string dialect can produce these); validation rejects them
    since such comparisons silently constrain nothing.
    """

    def __init__(self, nodes: Iterable[QueryNode] | None = None):
        self.query_nodes: list[QueryNode] = list(nodes or [])
        self.unbound_refs: list[tuple[str, AttrRef]] = []

    # ------------------------------------------------------------------
    # fluent construction
    # ------------------------------------------------------------------
    def match(self, quantifier: str | int = ".",
              predicate: Callable[[Any], bool] | None = None) -> "QueryMatcher":
        """Set the first query node (resets any existing query)."""
        self.query_nodes = [QueryNode(quantifier, predicate)]
        return self

    def rel(self, quantifier: str | int = ".",
            predicate: Callable[[Any], bool] | None = None) -> "QueryMatcher":
        """Append a query node related to (descendant of) the previous one."""
        if not self.query_nodes:
            raise ValueError("call match() before rel()")
        self.query_nodes.append(QueryNode(quantifier, predicate))
        return self

    # ------------------------------------------------------------------
    @classmethod
    def from_spec(cls, spec: Sequence[tuple]) -> "QueryMatcher":
        """Build a matcher from the object dialect.

        Each element is ``(quantifier,)`` or ``(quantifier, attr_dict)``.
        """
        nodes = []
        for step in spec:
            if len(step) == 1:
                nodes.append(QueryNode(step[0], refs=[]))
            elif len(step) == 2:
                quantifier, attrs = step
                if isinstance(attrs, dict):
                    nodes.append(QueryNode(quantifier, attr_predicate(attrs),
                                           refs=attr_refs(attrs)))
                else:
                    nodes.append(QueryNode(quantifier, attrs))
            else:
                raise ValueError(f"bad query step {step!r}")
        return cls(nodes)

    def __len__(self) -> int:
        return len(self.query_nodes)

    def __repr__(self) -> str:
        return f"QueryMatcher({[q.quantifier for q in self.query_nodes]!r})"

    # ------------------------------------------------------------------
    def apply(self, graph, row_view: Callable[[Any], Any]) -> list:
        """Run the query; returns the matched call-tree nodes.

        *row_view* maps a node to the mapping its predicates receive.
        """
        from .engine import match_graph

        return match_graph(graph, self.query_nodes, row_view)
