"""Static validation of call-path queries against a thicket.

A query over an ensemble fails *late* by default: a misspelled metric
name simply never matches (the predicate swallows the ``KeyError``),
a numeric comparison on a string column is silently false for every
node, and a quantifier sequence longer than the call tree is deep
backtracks over the whole graph before returning nothing.  Scripted
analysis (Cankur et al.; Pipit) needs those mistakes surfaced *before*
matching runs.

:func:`validate_query` cross-checks the statically known structure of
a query — the :class:`~repro.query.primitives.AttrRef` records the
string and object dialects attach to each query node — against the
thicket it is about to run on:

* every referenced column must exist in the performance table, with
  did-you-mean suggestions drawn from both the performance and
  metadata tables (and a dedicated hint when the name is a metadata
  column, which is per-profile, not per-node);
* operators must be type-compatible with the column: no regex match
  against a float metric, no ordering comparison against a string
  column, no string literal compared with a numeric one;
* regex literals must compile;
* ``WHERE`` comparisons must reference identifiers bound in ``MATCH``;
* the quantifier sequence must be satisfiable by *some* downward path
  of the call tree (``sum(min_count)`` bounded by the tree depth), and
  a fixed zero-width step must not carry a predicate;
* hierarchical (tuple) column references must name an existing top
  level of a columnar-joined thicket.

Fluent-API matchers built from raw callables carry no refs
(``QueryNode.refs is None``); for those only the quantifier checks
apply — an opaque predicate cannot be inspected.

All violations are collected and raised together as one
:class:`repro.errors.QueryValidationError`.
"""

from __future__ import annotations

import difflib
import re
from typing import Any, Sequence

import numpy as np

from ..errors import QueryValidationError
from ..obs import span as obs_span
from .matcher import QueryMatcher
from .primitives import AttrRef

__all__ = ["validate_query", "graph_depth"]


def graph_depth(graph) -> int:
    """Length (in nodes) of the longest root→leaf downward path."""
    best = 0
    stack = [(root, 1) for root in graph.roots]
    seen: set[int] = set()
    while stack:
        node, depth = stack.pop()
        if id(node) in seen:  # DAG-shaped graphs: longest simple prefix
            continue
        seen.add(id(node))
        best = max(best, depth)
        for child in node.children:
            stack.append((child, depth + 1))
    return best


def _coerce_matcher(query) -> QueryMatcher:
    """Accept a QueryMatcher, a string-dialect query, or an object spec."""
    if isinstance(query, QueryMatcher):
        return query
    if isinstance(query, str):
        from .dialect import parse_string_dialect

        return parse_string_dialect(query)
    if isinstance(query, (list, tuple)):
        return QueryMatcher.from_spec(query)
    raise TypeError(
        f"cannot validate a {type(query).__name__}: expected a "
        f"QueryMatcher, a string-dialect query, or an object-dialect spec")


def _column_kind(values: np.ndarray) -> str:
    """Classify a column as ``"numeric"``, ``"string"``, or ``"other"``."""
    if np.issubdtype(values.dtype, np.number) or values.dtype == bool:
        return "numeric"
    if np.issubdtype(values.dtype, np.str_):
        return "string"
    sample = [v for v in values[:64] if v is not None
              and not (isinstance(v, float) and np.isnan(v))]
    if not sample:
        return "other"
    if all(isinstance(v, str) for v in sample):
        return "string"
    if all(isinstance(v, (int, float, np.integer, np.floating, bool))
           for v in sample):
        return "numeric"
    return "other"


def _display(col: Any) -> str:
    return repr(col) if isinstance(col, tuple) else str(col)


def _suggest(attr: Any, candidates: Sequence[Any]) -> list[str]:
    """Nearest valid column names for an unknown *attr*."""
    by_text = {_display(c): c for c in candidates}
    close = difflib.get_close_matches(
        _display(attr), list(by_text), n=3, cutoff=0.5)
    # a plain name may also be the leaf of a hierarchical (tuple) column
    if not isinstance(attr, tuple):
        tails = [c for c in candidates
                 if isinstance(c, tuple) and c and str(c[-1]) == str(attr)]
        close.extend(_display(c) for c in tails if _display(c) not in close)
    return close


def _check_ref(ref: AttrRef, where: str, perf_cols: list, meta_cols: list,
               column_of, problems: list[str],
               suggestions: dict[str, list[str]]) -> None:
    attr = ref.attr
    if attr not in perf_cols:
        if attr in meta_cols:
            problems.append(
                f"{where}: {_display(attr)} is a metadata column "
                f"(per-profile), not a performance column (per-node); "
                f"filter with Thicket.filter_metadata instead")
            return
        if isinstance(attr, tuple) and attr:
            tops = sorted({_display(c[0]) for c in perf_cols
                           if isinstance(c, tuple) and c})
            if tops and not any(isinstance(c, tuple) and c[0] == attr[0]
                                for c in perf_cols):
                problems.append(
                    f"{where}: unknown hierarchical column "
                    f"{_display(attr)}: no top level {attr[0]!r} in this "
                    f"thicket (levels: {', '.join(tops)})")
                return
        close = _suggest(attr, list(perf_cols) + list(meta_cols))
        hint = f"; did you mean {close[0]}?" if close else ""
        problems.append(
            f"{where}: unknown column {_display(attr)}{hint}")
        if close:
            suggestions[_display(attr)] = close
        return

    if ref.kind == "regex":
        try:
            re.compile(str(ref.literal))
        except re.error as exc:
            problems.append(
                f"{where}: invalid regex {str(ref.literal)!r} for "
                f"{_display(attr)}: {exc}")
            return

    kind = _column_kind(column_of(attr))
    if kind == "numeric":
        if ref.kind == "regex":
            problems.append(
                f"{where}: regex match (=~) applied to numeric column "
                f"{_display(attr)}")
        elif isinstance(ref.literal, str):
            problems.append(
                f"{where}: string literal {ref.literal!r} compared "
                f"({ref.op}) with numeric column {_display(attr)}")
    elif kind == "string":
        if ref.kind == "order":
            problems.append(
                f"{where}: ordering comparison ({ref.op}) applied to "
                f"string column {_display(attr)}")
        elif ref.kind == "equality" and isinstance(
                ref.literal, (int, float)) and not isinstance(
                ref.literal, bool):
            problems.append(
                f"{where}: numeric literal {ref.literal!r} compared "
                f"({ref.op}) with string column {_display(attr)}")


def validate_query(query, thicket) -> QueryMatcher:
    """Statically validate *query* against *thicket*; returns the matcher.

    Raises :class:`~repro.errors.QueryValidationError` listing every
    violation when the query cannot possibly behave as written.  See
    the module docstring for the checks performed.
    """
    matcher = _coerce_matcher(query)
    problems: list[str] = []
    suggestions: dict[str, list[str]] = {}

    with obs_span("query.validate", steps=len(matcher.query_nodes)):
        if not matcher.query_nodes:
            problems.append("empty query: no query nodes to match")

        perf_cols = list(thicket.dataframe.columns)
        meta_cols = list(thicket.metadata.columns)

        for ident, ref in getattr(matcher, "unbound_refs", []):
            problems.append(
                f"WHERE comparison on {ident}.{_display(ref.attr)} "
                f"references identifier {ident!r} never bound in MATCH; "
                f"it constrains nothing")

        for idx, node in enumerate(matcher.query_nodes):
            where = f"step {idx} ({node.quantifier!r})"
            if node.refs:
                for ref in node.refs:
                    _check_ref(ref, where, perf_cols, meta_cols,
                               thicket.dataframe.column, problems,
                               suggestions)
            if (node.max_count == 0 and node.refs):
                problems.append(
                    f"{where}: zero-width quantifier can never consume a "
                    f"node, so its predicate is unsatisfiable")

        min_len = sum(n.min_count for n in matcher.query_nodes)
        depth = graph_depth(thicket.graph)
        if matcher.query_nodes and min_len > depth:
            problems.append(
                f"quantifiers require a downward path of at least "
                f"{min_len} node(s), but the call tree is only {depth} "
                f"deep: the query is structurally unsatisfiable")

    if problems:
        head = problems[0] if len(problems) == 1 else (
            f"{len(problems)} problems: " + "; ".join(problems))
        raise QueryValidationError(
            f"invalid query: {head}", problems=problems,
            suggestions=suggestions)
    return matcher
