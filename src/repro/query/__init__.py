"""``repro.query`` — the Call Path Query Language (Hatchet dialects)."""

from .dialect import QuerySyntaxError, parse_string_dialect
from .engine import match_graph, match_paths
from .matcher import QueryMatcher
from .primitives import QueryNode, attr_predicate, parse_quantifier

__all__ = [
    "QueryMatcher",
    "parse_string_dialect",
    "QuerySyntaxError",
    "QueryNode",
    "attr_predicate",
    "parse_quantifier",
    "match_graph",
    "match_paths",
]
