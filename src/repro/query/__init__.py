"""``repro.query`` — the Call Path Query Language (Hatchet dialects)."""

from ..errors import QueryValidationError
from .dialect import QuerySyntaxError, parse_string_dialect
from .engine import match_graph, match_paths
from .matcher import QueryMatcher
from .primitives import (
    AttrRef,
    QueryNode,
    attr_predicate,
    attr_refs,
    parse_quantifier,
)
from .validate import graph_depth, validate_query

__all__ = [
    "QueryMatcher",
    "parse_string_dialect",
    "QuerySyntaxError",
    "QueryValidationError",
    "QueryNode",
    "AttrRef",
    "attr_predicate",
    "attr_refs",
    "parse_quantifier",
    "match_graph",
    "match_paths",
    "validate_query",
    "graph_depth",
]
