"""String-based dialect of the Call Path Query Language.

Hatchet (and therefore Thicket) ships a Cypher-inspired string syntax
alongside the object/fluent APIs; this module implements it::

    MATCH (".", p)->("*")->(".", q)
    WHERE p."name" = "Base_CUDA" AND q."name" =~ ".*block_128"

Grammar (informal):

.. code-block:: text

    query      := MATCH pattern [WHERE predicate]
    pattern    := step ("->" step)*
    step       := "(" quantifier ["," ident] ")"
    quantifier := '"."' | '"*"' | '"+"' | INT
    predicate  := disjunction of conjunctions of comparisons
    comparison := ident '.' STRING op literal | NOT comparison
                  | "(" predicate ")"
    op         := = | != | < | <= | > | >= | =~   (regex full-match)

Comparisons on a node bound to an ensemble row apply Thicket's
``.all()`` semantics: every profile's value must satisfy the test.
"""

from __future__ import annotations

import re
from typing import Any, Callable

from ..errors import ReproError
from .matcher import QueryMatcher
from .primitives import AttrRef, QueryNode

__all__ = ["parse_string_dialect", "QuerySyntaxError"]


class QuerySyntaxError(ReproError, ValueError):
    """Raised for malformed string-dialect queries.

    Doubles as a ``ValueError`` so callers predating the typed
    hierarchy keep working.
    """

    default_stage = "parse"


_TOKEN_RE = re.compile(r"""
    (?P<ws>\s+)
  | (?P<string>"(?:[^"\\]|\\.)*")
  | (?P<number>-?\d+(?:\.\d+)?)
  | (?P<arrow>->)
  | (?P<op><=|>=|!=|=~|=|<|>)
  | (?P<lparen>\()
  | (?P<rparen>\))
  | (?P<comma>,)
  | (?P<dot>\.)
  | (?P<word>[A-Za-z_][A-Za-z_0-9]*)
""", re.VERBOSE)

_KEYWORDS = {"MATCH", "WHERE", "AND", "OR", "NOT"}


class _Token:
    __slots__ = ("kind", "value", "pos")

    def __init__(self, kind: str, value: str, pos: int):
        self.kind = kind
        self.value = value
        self.pos = pos

    def __repr__(self) -> str:
        return f"Token({self.kind}, {self.value!r})"


def _tokenize(text: str) -> list[_Token]:
    tokens = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise QuerySyntaxError(
                f"unexpected character {text[pos]!r} at position {pos}")
        pos = m.end()
        kind = m.lastgroup
        if kind == "ws":
            continue
        value = m.group()
        if kind == "word" and value.upper() in _KEYWORDS:
            kind, value = "keyword", value.upper()
        tokens.append(_Token(kind, value, m.start()))
    return tokens


class _Parser:
    def __init__(self, tokens: list[_Token]):
        self.tokens = tokens
        self.i = 0
        # (bound identifier, AttrRef) per comparison, in source order —
        # the statically known structure validate_query() works from.
        self.comparisons: list[tuple[str, AttrRef]] = []

    # -- token helpers ---------------------------------------------------
    def peek(self) -> _Token | None:
        return self.tokens[self.i] if self.i < len(self.tokens) else None

    def next(self) -> _Token:
        tok = self.peek()
        if tok is None:
            raise QuerySyntaxError("unexpected end of query")
        self.i += 1
        return tok

    def expect(self, kind: str, value: str | None = None) -> _Token:
        tok = self.next()
        if tok.kind != kind or (value is not None and tok.value != value):
            raise QuerySyntaxError(
                f"expected {value or kind} at position {tok.pos}, "
                f"got {tok.value!r}")
        return tok

    def accept(self, kind: str, value: str | None = None) -> _Token | None:
        tok = self.peek()
        if tok and tok.kind == kind and (value is None or tok.value == value):
            self.i += 1
            return tok
        return None

    # -- grammar ----------------------------------------------------------
    def parse(self) -> QueryMatcher:
        self.expect("keyword", "MATCH")
        steps = [self._step()]
        while self.accept("arrow"):
            steps.append(self._step())

        bindings = {name: idx for idx, (_, name) in enumerate(steps)
                    if name is not None}
        predicates: dict[int, Callable[[Any], bool]] = {}
        if self.accept("keyword", "WHERE"):
            expr = self._disjunction()
            for name, idx in bindings.items():
                predicates[idx] = _bind(expr, name)
        if self.peek() is not None:
            raise QuerySyntaxError(
                f"trailing input at position {self.peek().pos}")

        refs_of: dict[int, list[AttrRef]] = {}
        unbound: list[tuple[str, AttrRef]] = []
        for ident, ref in self.comparisons:
            if ident in bindings:
                refs_of.setdefault(bindings[ident], []).append(ref)
            else:
                unbound.append((ident, ref))

        nodes = []
        for idx, (quantifier, _name) in enumerate(steps):
            nodes.append(QueryNode(quantifier, predicates.get(idx),
                                   refs=refs_of.get(idx, [])))
        matcher = QueryMatcher(nodes)
        matcher.unbound_refs = unbound
        return matcher

    def _step(self) -> tuple[str | int, str | None]:
        self.expect("lparen")
        tok = self.next()
        if tok.kind == "string":
            quantifier: str | int = _unquote(tok.value)
            if quantifier not in (".", "*", "+"):
                raise QuerySyntaxError(
                    f"bad quantifier {quantifier!r} at position {tok.pos}")
        elif tok.kind == "number":
            quantifier = int(float(tok.value))
        else:
            raise QuerySyntaxError(
                f"expected quantifier at position {tok.pos}")
        name = None
        if self.accept("comma"):
            name = self.expect("word").value
        self.expect("rparen")
        return quantifier, name

    # predicate expression tree: returns fn(bound_name, row) -> bool
    def _disjunction(self):
        left = self._conjunction()
        while self.accept("keyword", "OR"):
            right = self._conjunction()
            left = _combine(left, right, lambda a, b: a or b)
        return left

    def _conjunction(self):
        left = self._unary()
        while self.accept("keyword", "AND"):
            right = self._unary()
            left = _combine(left, right, lambda a, b: a and b)
        return left

    def _unary(self):
        if self.accept("keyword", "NOT"):
            inner = self._unary()
            return lambda name, row: not inner(name, row)
        if self.accept("lparen"):
            inner = self._disjunction()
            self.expect("rparen")
            return inner
        return self._comparison()

    def _comparison(self):
        ident = self.expect("word").value
        self.expect("dot")
        attr = _unquote(self.expect("string").value)
        op = self.expect("op").value
        lit_tok = self.next()
        if lit_tok.kind == "string":
            literal: Any = _unquote(lit_tok.value)
        elif lit_tok.kind == "number":
            literal = float(lit_tok.value)
        else:
            raise QuerySyntaxError(
                f"expected literal at position {lit_tok.pos}")
        self.comparisons.append((ident, AttrRef(attr, op, literal)))
        check = _scalar_check(op, literal)

        def compare(name: str, row: Any) -> bool:
            if name != ident:
                return True  # comparison constrains a different binding
            try:
                value = row[attr]
            except (KeyError, TypeError):
                return False
            if hasattr(value, "apply") and hasattr(value, "all"):
                return bool(value.apply(check).all())
            return bool(check(value))

        return compare


def _combine(left, right, op):
    return lambda name, row: op(left(name, row), right(name, row))


def _bind(expr, name: str) -> Callable[[Any], bool]:
    return lambda row: expr(name, row)


def _unquote(text: str) -> str:
    return text[1:-1].replace('\\"', '"').replace("\\\\", "\\")


def _scalar_check(op: str, literal: Any) -> Callable[[Any], bool]:
    if op == "=~":
        try:
            pattern = re.compile(str(literal))
        except re.error as exc:
            raise QuerySyntaxError(
                f"invalid regex {str(literal)!r}: {exc}") from exc
        return lambda v: v is not None and pattern.fullmatch(str(v)) is not None
    if op == "=":
        return lambda v: v == literal or (
            isinstance(v, (int, float)) and isinstance(literal, float)
            and float(v) == literal)
    if op == "!=":
        return lambda v: v != literal
    numeric = {
        "<": lambda a, b: a < b,
        "<=": lambda a, b: a <= b,
        ">": lambda a, b: a > b,
        ">=": lambda a, b: a >= b,
    }[op]

    def check(v: Any) -> bool:
        try:
            return bool(numeric(float(v), float(literal)))
        except (TypeError, ValueError):
            return False

    return check


def parse_string_dialect(query: str) -> QueryMatcher:
    """Compile a string-dialect query into a :class:`QueryMatcher`."""
    return _Parser(_tokenize(query)).parse()
