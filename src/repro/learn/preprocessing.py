"""Feature scaling (scikit-learn's ``preprocessing`` substitute).

The paper normalizes top-down metrics and speedups with
``StandardScaler`` before K-means (§4.2.2); both that and min-max
scaling are provided, with the fit/transform/inverse_transform API.
"""

from __future__ import annotations

import numpy as np

__all__ = ["StandardScaler", "MinMaxScaler"]


class StandardScaler:
    """Standardize features to zero mean and unit variance (per column)."""

    def __init__(self, with_mean: bool = True, with_std: bool = True):
        self.with_mean = with_mean
        self.with_std = with_std
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X) -> "StandardScaler":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("expected a 2-D feature matrix")
        self.mean_ = X.mean(axis=0) if self.with_mean else np.zeros(X.shape[1])
        if self.with_std:
            scale = X.std(axis=0)
            scale[scale == 0.0] = 1.0  # constant features stay constant
            self.scale_ = scale
        else:
            self.scale_ = np.ones(X.shape[1])
        return self

    def transform(self, X) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("scaler is not fitted")
        X = np.asarray(X, dtype=np.float64)
        return (X - self.mean_) / self.scale_

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        if self.mean_ is None:
            raise RuntimeError("scaler is not fitted")
        return np.asarray(X, dtype=np.float64) * self.scale_ + self.mean_


class MinMaxScaler:
    """Scale features to a target range (default [0, 1]) per column."""

    def __init__(self, feature_range: tuple[float, float] = (0.0, 1.0)):
        lo, hi = feature_range
        if hi <= lo:
            raise ValueError("feature_range must be increasing")
        self.feature_range = (float(lo), float(hi))
        self.data_min_: np.ndarray | None = None
        self.data_max_: np.ndarray | None = None

    def fit(self, X) -> "MinMaxScaler":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("expected a 2-D feature matrix")
        self.data_min_ = X.min(axis=0)
        self.data_max_ = X.max(axis=0)
        return self

    def transform(self, X) -> np.ndarray:
        if self.data_min_ is None:
            raise RuntimeError("scaler is not fitted")
        X = np.asarray(X, dtype=np.float64)
        lo, hi = self.feature_range
        span = self.data_max_ - self.data_min_
        span = np.where(span == 0.0, 1.0, span)
        return lo + (X - self.data_min_) / span * (hi - lo)

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        if self.data_min_ is None:
            raise RuntimeError("scaler is not fitted")
        lo, hi = self.feature_range
        span = self.data_max_ - self.data_min_
        span = np.where(span == 0.0, 1.0, span)
        return (np.asarray(X, dtype=np.float64) - lo) / (hi - lo) * span + self.data_min_
