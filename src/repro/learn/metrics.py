"""Clustering quality metrics.

Silhouette analysis (Rousseeuw 1987, cited by the paper) is how the
case study picks the number of K-means clusters before producing
Fig. 10.
"""

from __future__ import annotations

import numpy as np

__all__ = ["silhouette_samples", "silhouette_score", "best_k_by_silhouette"]


def _pairwise_sq(X: np.ndarray) -> np.ndarray:
    sq = (X ** 2).sum(axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (X @ X.T)
    np.maximum(d2, 0.0, out=d2)
    return d2


def silhouette_samples(X, labels) -> np.ndarray:
    """Per-sample silhouette coefficient ``(b - a) / max(a, b)``."""
    X = np.asarray(X, dtype=np.float64)
    labels = np.asarray(labels)
    n = len(X)
    if n != len(labels):
        raise ValueError("X and labels length mismatch")
    uniq = np.unique(labels)
    if len(uniq) < 2:
        raise ValueError("silhouette requires at least 2 clusters")
    dist = np.sqrt(_pairwise_sq(X))
    sil = np.zeros(n)
    members = {c: np.where(labels == c)[0] for c in uniq}
    for i in range(n):
        own = members[labels[i]]
        if len(own) == 1:
            sil[i] = 0.0
            continue
        a = dist[i, own].sum() / (len(own) - 1)
        b = min(
            dist[i, members[c]].mean() for c in uniq if c != labels[i]
        )
        sil[i] = (b - a) / max(a, b) if max(a, b) > 0 else 0.0
    return sil


def silhouette_score(X, labels) -> float:
    """Mean silhouette coefficient over all samples."""
    return float(silhouette_samples(X, labels).mean())


def best_k_by_silhouette(X, k_range=range(2, 8), random_state: int | None = 0,
                         n_init: int = 10) -> tuple[int, dict[int, float]]:
    """Pick the cluster count maximizing the silhouette score.

    Returns ``(best_k, {k: score})`` — the Silhouette analysis step the
    paper runs before clustering (§4.2.2).
    """
    from .cluster import KMeans

    scores: dict[int, float] = {}
    X = np.asarray(X, dtype=np.float64)
    for k in k_range:
        if k >= len(X):
            continue
        km = KMeans(n_clusters=k, n_init=n_init, random_state=random_state).fit(X)
        if len(np.unique(km.labels_)) < 2:
            continue
        scores[k] = silhouette_score(X, km.labels_)
    if not scores:
        raise ValueError("no feasible k in range")
    best = max(scores, key=scores.get)
    return best, scores
