"""K-means clustering (Lloyd's algorithm with k-means++ seeding).

The paper clusters RAJA "Stream" kernels by their top-down metrics and
speedup (§4.2.2, Fig. 10) using scikit-learn's K-means, which this
module re-implements: greedy k-means++ initialization (D² sampling),
Lloyd iterations to convergence, multiple restarts keeping the lowest
inertia.
"""

from __future__ import annotations

import numpy as np

__all__ = ["KMeans", "kmeans_plus_plus"]


def kmeans_plus_plus(X: np.ndarray, k: int, rng: np.random.Generator) -> np.ndarray:
    """D²-weighted initial centers (Arthur & Vassilvitskii 2007)."""
    n = len(X)
    centers = np.empty((k, X.shape[1]), dtype=np.float64)
    centers[0] = X[rng.integers(n)]
    closest_sq = ((X - centers[0]) ** 2).sum(axis=1)
    for i in range(1, k):
        total = closest_sq.sum()
        if total <= 0.0:
            # all points coincide with chosen centers; pick uniformly
            centers[i] = X[rng.integers(n)]
            continue
        probs = closest_sq / total
        centers[i] = X[rng.choice(n, p=probs)]
        dist_sq = ((X - centers[i]) ** 2).sum(axis=1)
        np.minimum(closest_sq, dist_sq, out=closest_sq)
    return centers


class KMeans:
    """Lloyd's K-means with restarts.

    Parameters
    ----------
    n_clusters:
        Number of clusters *k*.
    n_init:
        Independent restarts; the run with the lowest inertia wins.
    max_iter / tol:
        Lloyd iteration limits.
    random_state:
        Seed for reproducible clustering.
    """

    def __init__(self, n_clusters: int = 8, n_init: int = 10,
                 max_iter: int = 300, tol: float = 1e-4,
                 random_state: int | None = None):
        if n_clusters < 1:
            raise ValueError("n_clusters must be >= 1")
        self.n_clusters = n_clusters
        self.n_init = n_init
        self.max_iter = max_iter
        self.tol = tol
        self.random_state = random_state
        self.cluster_centers_: np.ndarray | None = None
        self.labels_: np.ndarray | None = None
        self.inertia_: float = float("inf")
        self.n_iter_: int = 0

    # ------------------------------------------------------------------
    def fit(self, X) -> "KMeans":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("expected a 2-D feature matrix")
        if len(X) < self.n_clusters:
            raise ValueError(
                f"n_samples={len(X)} < n_clusters={self.n_clusters}"
            )
        rng = np.random.default_rng(self.random_state)
        best = (float("inf"), None, None, 0)
        for _ in range(self.n_init):
            centers, labels, inertia, iters = self._lloyd(X, rng)
            if inertia < best[0]:
                best = (inertia, centers, labels, iters)
        self.inertia_, self.cluster_centers_, self.labels_, self.n_iter_ = best
        return self

    def _lloyd(self, X: np.ndarray, rng: np.random.Generator):
        centers = kmeans_plus_plus(X, self.n_clusters, rng)
        labels = np.zeros(len(X), dtype=np.intp)
        for iteration in range(1, self.max_iter + 1):
            # assignment step (vectorized distance matrix)
            d2 = ((X[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
            labels = d2.argmin(axis=1)
            # update step
            new_centers = centers.copy()
            for c in range(self.n_clusters):
                members = X[labels == c]
                if len(members):
                    new_centers[c] = members.mean(axis=0)
                else:
                    # re-seed an empty cluster at the worst-fit point
                    worst = d2.min(axis=1).argmax()
                    new_centers[c] = X[worst]
            shift = np.sqrt(((new_centers - centers) ** 2).sum(axis=1)).max()
            centers = new_centers
            if shift <= self.tol:
                break
        d2 = ((X[:, None, :] - centers[None, :, :]) ** 2).sum(axis=2)
        labels = d2.argmin(axis=1)
        inertia = float(d2[np.arange(len(X)), labels].sum())
        return centers, labels, inertia, iteration

    def predict(self, X) -> np.ndarray:
        if self.cluster_centers_ is None:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=np.float64)
        d2 = ((X[:, None, :] - self.cluster_centers_[None, :, :]) ** 2).sum(axis=2)
        return d2.argmin(axis=1)

    def fit_predict(self, X) -> np.ndarray:
        return self.fit(X).labels_
