"""Principal component analysis (the scikit-learn ``PCA`` substitute).

The paper lists PCA among the data-science techniques Thicket feeds
(§2); implemented via SVD of the centered data matrix.
"""

from __future__ import annotations

import numpy as np

__all__ = ["PCA"]


class PCA:
    """Linear dimensionality reduction via SVD.

    Parameters
    ----------
    n_components:
        Number of components to keep (default: all).
    """

    def __init__(self, n_components: int | None = None):
        self.n_components = n_components
        self.mean_: np.ndarray | None = None
        self.components_: np.ndarray | None = None
        self.explained_variance_: np.ndarray | None = None
        self.explained_variance_ratio_: np.ndarray | None = None
        self.singular_values_: np.ndarray | None = None

    def fit(self, X) -> "PCA":
        X = np.asarray(X, dtype=np.float64)
        if X.ndim != 2:
            raise ValueError("expected a 2-D feature matrix")
        n, p = X.shape
        k = self.n_components or min(n, p)
        if k > min(n, p):
            raise ValueError(f"n_components={k} > min(n_samples, n_features)")
        self.mean_ = X.mean(axis=0)
        centered = X - self.mean_
        # economy SVD; components are right singular vectors
        _, s, vt = np.linalg.svd(centered, full_matrices=False)
        var = (s ** 2) / max(n - 1, 1)
        total = var.sum() or 1.0
        self.components_ = vt[:k]
        self.singular_values_ = s[:k]
        self.explained_variance_ = var[:k]
        self.explained_variance_ratio_ = var[:k] / total
        return self

    def transform(self, X) -> np.ndarray:
        if self.components_ is None:
            raise RuntimeError("model is not fitted")
        X = np.asarray(X, dtype=np.float64)
        return (X - self.mean_) @ self.components_.T

    def fit_transform(self, X) -> np.ndarray:
        return self.fit(X).transform(X)

    def inverse_transform(self, X) -> np.ndarray:
        if self.components_ is None:
            raise RuntimeError("model is not fitted")
        return np.asarray(X, dtype=np.float64) @ self.components_ + self.mean_
