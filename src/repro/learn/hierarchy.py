"""Agglomerative (hierarchical) clustering.

Completes the scikit-learn substitute's clustering options: bottom-up
merging with single/complete/average linkage, a scipy-compatible
linkage matrix, and a flat cut by cluster count.  Useful in EDA when
the number of kernel behaviour groups is unknown and a dendrogram-style
view is preferred over K-means.
"""

from __future__ import annotations

import numpy as np

__all__ = ["linkage_matrix", "AgglomerativeClustering", "cut_tree"]

_LINKAGES = ("single", "complete", "average")


def _pairwise(X: np.ndarray) -> np.ndarray:
    sq = (X ** 2).sum(axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (X @ X.T)
    np.maximum(d2, 0.0, out=d2)
    return np.sqrt(d2)


def linkage_matrix(X, method: str = "average") -> np.ndarray:
    """Scipy-compatible (n-1, 4) linkage matrix via naive agglomeration.

    Row i: ``[cluster_a, cluster_b, distance, new_cluster_size]`` with
    original points numbered 0..n-1 and merged clusters n, n+1, ...
    Lance-Williams updates keep the three supported linkages exact.
    """
    if method not in _LINKAGES:
        raise ValueError(f"method must be one of {_LINKAGES}")
    X = np.asarray(X, dtype=np.float64)
    if X.ndim != 2:
        raise ValueError("expected a 2-D feature matrix")
    n = len(X)
    if n < 2:
        raise ValueError("need at least two samples")

    dist = _pairwise(X)
    np.fill_diagonal(dist, np.inf)
    active: dict[int, int] = {i: 1 for i in range(n)}  # cluster id -> size
    position = {i: i for i in range(n)}  # cluster id -> matrix row
    out = np.zeros((n - 1, 4))
    next_id = n

    for step in range(n - 1):
        ids = list(active)
        rows = [position[i] for i in ids]
        sub = dist[np.ix_(rows, rows)]
        flat = np.argmin(sub)
        ai, bi = divmod(flat, len(ids))
        a, b = ids[ai], ids[bi]
        if a > b:
            a, b = b, a
        d = float(sub[ai, bi])
        size = active[a] + active[b]
        out[step] = [a, b, d, size]

        # Lance-Williams update of distances to the merged cluster,
        # stored in a's row; b's row is retired.
        ra, rb = position[a], position[b]
        da, db = dist[ra].copy(), dist[rb].copy()
        if method == "single":
            merged = np.minimum(da, db)
        elif method == "complete":
            merged = np.maximum(da, db)
        else:  # average
            wa, wb = active[a], active[b]
            merged = (wa * da + wb * db) / (wa + wb)
        dist[ra, :] = merged
        dist[:, ra] = merged
        dist[ra, ra] = np.inf
        dist[rb, :] = np.inf
        dist[:, rb] = np.inf

        del active[a], active[b]
        del position[a], position[b]
        active[next_id] = size
        position[next_id] = ra
        next_id += 1
    return out


def cut_tree(Z: np.ndarray, n_clusters: int) -> np.ndarray:
    """Flat labels from a linkage matrix by stopping early.

    Performing only the first ``n - n_clusters`` merges leaves exactly
    *n_clusters* groups; labels are renumbered 0..k-1 in order of first
    appearance.
    """
    n = len(Z) + 1
    if not 1 <= n_clusters <= n:
        raise ValueError(f"n_clusters must be in [1, {n}]")
    parent = list(range(n + len(Z)))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    for step in range(n - n_clusters):
        a, b = int(Z[step, 0]), int(Z[step, 1])
        new = n + step
        parent[find(a)] = new
        parent[find(b)] = new

    labels = np.empty(n, dtype=np.intp)
    remap: dict[int, int] = {}
    for i in range(n):
        root = find(i)
        labels[i] = remap.setdefault(root, len(remap))
    return labels


class AgglomerativeClustering:
    """Bottom-up clustering with a fit/fit_predict interface."""

    def __init__(self, n_clusters: int = 2, linkage: str = "average"):
        if linkage not in _LINKAGES:
            raise ValueError(f"linkage must be one of {_LINKAGES}")
        self.n_clusters = n_clusters
        self.linkage = linkage
        self.labels_: np.ndarray | None = None
        self.linkage_matrix_: np.ndarray | None = None

    def fit(self, X) -> "AgglomerativeClustering":
        self.linkage_matrix_ = linkage_matrix(X, method=self.linkage)
        self.labels_ = cut_tree(self.linkage_matrix_, self.n_clusters)
        return self

    def fit_predict(self, X) -> np.ndarray:
        return self.fit(X).labels_
