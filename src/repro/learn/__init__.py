"""``repro.learn`` — data-science algorithms (scikit-learn substitute)."""

from .cluster import KMeans, kmeans_plus_plus
from .decomposition import PCA
from .hierarchy import AgglomerativeClustering, cut_tree, linkage_matrix
from .metrics import best_k_by_silhouette, silhouette_samples, silhouette_score
from .preprocessing import MinMaxScaler, StandardScaler

__all__ = [
    "KMeans",
    "kmeans_plus_plus",
    "PCA",
    "AgglomerativeClustering",
    "linkage_matrix",
    "cut_tree",
    "StandardScaler",
    "MinMaxScaler",
    "silhouette_score",
    "silhouette_samples",
    "best_k_by_silhouette",
]
