"""``repro.model`` — empirical performance modeling (Extra-P substitute)."""

from .model import Model
from .modeler import ExtrapInterface, Modeler
from .multiparam import (
    MultiParameterModel,
    MultiParameterModeler,
    model_thicket_multiparam,
)
from .terms import EXPONENTS, LOG_POWERS, Term, default_hypothesis_space

__all__ = [
    "Model",
    "MultiParameterModel",
    "MultiParameterModeler",
    "model_thicket_multiparam",
    "Modeler",
    "ExtrapInterface",
    "Term",
    "default_hypothesis_space",
    "EXPONENTS",
    "LOG_POWERS",
]
