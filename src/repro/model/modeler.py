"""The Extra-P-style modeler: fit PMNF hypotheses, keep the best.

Given measurements ``(p_i, y_i)`` (parameter value → metric, typically
mean time per MPI-rank count), each candidate term yields a linear
least-squares problem in ``(c0, c1)``; hypotheses are ranked by
cross-validated residual sum of squares with an adjusted-R² tie-break,
following Extra-P's model-selection strategy.  ``ExtrapInterface``
is the "convenient high-level interface" of §4.2.3: it models every
call-tree node of a Thicket in bulk.
"""

from __future__ import annotations

from typing import Any, Hashable, Sequence

import numpy as np

from .model import Model
from .terms import Term, default_hypothesis_space

__all__ = ["Modeler", "ExtrapInterface"]


class Modeler:
    """Single-parameter empirical modeler.

    Parameters
    ----------
    hypothesis_space:
        Candidate terms (default :func:`default_hypothesis_space`).
    use_crossvalidation:
        Score hypotheses by leave-one-out RSS instead of plain RSS
        (needs ≥ 4 distinct parameter values, else falls back).
    """

    def __init__(self, hypothesis_space: Sequence[Term] | None = None,
                 use_crossvalidation: bool = True):
        self.hypothesis_space = list(hypothesis_space
                                     or default_hypothesis_space())
        self.use_crossvalidation = use_crossvalidation

    # ------------------------------------------------------------------
    def fit(self, p, y, parameter: str = "p", metric: str | None = None) -> Model:
        """Fit the best single-term PMNF model to measurements."""
        p = np.asarray(p, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if p.shape != y.shape or p.ndim != 1:
            raise ValueError("p and y must be 1-D arrays of equal length")
        if len(p) < 2:
            raise ValueError("need at least two measurements")
        if np.any(p <= 0):
            raise ValueError("parameter values must be positive")

        # constant model is the baseline hypothesis
        const_pred = np.full_like(y, y.mean())
        best_model = self._package(
            float(y.mean()), 0.0, Term(0), p, y, const_pred,
            parameter, metric,
        )
        best_score = self._score(p, y, None)
        # a non-constant hypothesis must beat the incumbent by more than
        # float noise, or perfectly-constant data would grow phantom terms
        tol = 1e-12 * float((y ** 2).sum() + 1.0)

        distinct = len(np.unique(p))
        for term in self.hypothesis_space:
            if distinct < 3 and term.log_power > 0:
                continue  # not enough support to distinguish log terms
            fit = self._fit_term(p, y, term)
            if fit is None:
                continue
            c0, c1 = fit
            score = self._score(p, y, term)
            if score < best_score - tol:
                pred = c0 + c1 * term.evaluate(p)
                best_model = self._package(c0, c1, term, p, y, pred,
                                           parameter, metric)
                best_score = score
        return best_model

    # ------------------------------------------------------------------
    def _fit_term(self, p: np.ndarray, y: np.ndarray, term: Term
                  ) -> tuple[float, float] | None:
        basis = term.evaluate(p)
        if not np.all(np.isfinite(basis)):
            return None
        A = np.column_stack([np.ones_like(p), basis])
        try:
            coef, *_ = np.linalg.lstsq(A, y, rcond=None)
        except np.linalg.LinAlgError:  # pragma: no cover - defensive
            return None
        return float(coef[0]), float(coef[1])

    def _score(self, p: np.ndarray, y: np.ndarray, term: Term | None) -> float:
        """Cross-validated (or plain) RSS of a hypothesis."""
        distinct = len(np.unique(p))
        if self.use_crossvalidation and distinct >= 4 and len(p) >= 4:
            rss = 0.0
            for i in range(len(p)):
                mask = np.ones(len(p), dtype=bool)
                mask[i] = False
                pred = self._predict_fit(p[mask], y[mask], term, p[i])
                if pred is None:
                    return float("inf")
                rss += (y[i] - pred) ** 2
            return rss
        pred = self._predict_fit(p, y, term, p)
        if pred is None:
            return float("inf")
        return float(((y - pred) ** 2).sum())

    def _predict_fit(self, p_train, y_train, term: Term | None, p_eval):
        if term is None:
            return np.mean(y_train) if np.ndim(p_eval) == 0 else np.full(
                np.shape(p_eval), np.mean(y_train)
            )
        fit = self._fit_term(np.asarray(p_train), np.asarray(y_train), term)
        if fit is None:
            return None
        c0, c1 = fit
        return c0 + c1 * term.evaluate(p_eval)

    @staticmethod
    def _package(c0: float, c1: float, term: Term, p, y, pred,
                 parameter: str, metric: str | None) -> Model:
        resid = y - pred
        rss = float((resid ** 2).sum())
        tss = float(((y - y.mean()) ** 2).sum())
        r2 = 1.0 - rss / tss if tss > 0 else 1.0
        n, k = len(y), (1 if term.is_constant() or c1 == 0.0 else 2)
        adj = 1.0 - (1.0 - r2) * (n - 1) / max(n - k - 1, 1)
        denom = np.abs(y) + np.abs(pred)
        with np.errstate(invalid="ignore", divide="ignore"):
            ratio = np.where(denom > 0, 2.0 * np.abs(resid) / denom, 0.0)
        smape = float(100.0 * np.mean(ratio))
        return Model(c0, c1, term, rss=rss, r_squared=r2,
                     adjusted_r_squared=adj, smape=smape,
                     parameter=parameter, metric=metric)


class ExtrapInterface:
    """Bulk modeling of a Thicket (§4.2.3).

    Builds one model per call-tree node: the modeling parameter comes
    from a metadata column (e.g. ``"mpi.world.size"``), the response is
    a performance-data metric aggregated per (node, parameter value).
    """

    def __init__(self, modeler: Modeler | None = None):
        self.modeler = modeler or Modeler()

    def model_thicket(self, tk, parameter_column: str, metric: Hashable,
                      aggregate: str = "mean") -> dict[Any, Model]:
        """Return node → fitted model; also records models on the statsframe."""
        from ..frame.ops import AGGREGATIONS

        agg = AGGREGATIONS[aggregate]
        param_by_profile = {
            pid: row[parameter_column] for pid, row in tk.metadata.iterrows()
        }

        per_node: dict[Any, dict[float, list[float]]] = {}
        metric_col = tk.dataframe.column(metric)
        for i, t in enumerate(tk.dataframe.index.values):
            node, pid = t[0], t[1]
            p_val = float(param_by_profile[pid])
            v = metric_col[i]
            if v is None or (isinstance(v, float) and np.isnan(v)):
                continue
            per_node.setdefault(node, {}).setdefault(p_val, []).append(float(v))

        models: dict[Any, Model] = {}
        for node, by_p in per_node.items():
            ps = sorted(by_p)
            ys = [agg(np.asarray(by_p[p])) for p in ps]
            if len(ps) < 2:
                continue
            models[node] = self.modeler.fit(
                np.asarray(ps), np.asarray(ys),
                parameter=parameter_column, metric=str(metric),
            )

        metric_name = metric[-1] if isinstance(metric, tuple) else metric
        out_key = f"{metric_name}_extrap_model"
        tk.statsframe[out_key] = [
            str(models[n]) if n in models else None
            for n in tk.statsframe.index.values
        ]
        return models
