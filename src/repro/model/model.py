"""Fitted performance models.

A :class:`Model` is ``c0 + c1 * term(p)`` — evaluable, comparable by
fit quality, and printable in the format of the paper's Fig. 11, e.g.
``200.23 + -18.28 * p^(1/3)``.
"""

from __future__ import annotations

import numpy as np

from .terms import Term

__all__ = ["Model"]


class Model:
    """An analytic scaling function fit to measurements."""

    __slots__ = ("intercept", "coefficient", "term", "rss", "r_squared",
                 "adjusted_r_squared", "smape", "parameter", "metric")

    def __init__(self, intercept: float, coefficient: float, term: Term,
                 rss: float = float("nan"), r_squared: float = float("nan"),
                 adjusted_r_squared: float = float("nan"),
                 smape: float = float("nan"),
                 parameter: str = "p", metric: str | None = None):
        self.intercept = float(intercept)
        self.coefficient = float(coefficient)
        self.term = term
        self.rss = rss
        self.r_squared = r_squared
        self.adjusted_r_squared = adjusted_r_squared
        self.smape = smape
        self.parameter = parameter
        self.metric = metric

    def evaluate(self, p) -> np.ndarray | float:
        """Predicted metric value(s) at parameter value(s) *p*."""
        p_arr = np.asarray(p, dtype=np.float64)
        out = self.intercept + self.coefficient * self.term.evaluate(p_arr)
        return float(out) if np.isscalar(p) or p_arr.ndim == 0 else out

    __call__ = evaluate

    def is_constant(self) -> bool:
        return self.coefficient == 0.0 or self.term.is_constant()

    def degree(self) -> float:
        """Asymptotic growth degree (for ranking scalability bugs).

        Pure powers return their exponent; log factors add a small
        epsilon per power so ``p`` > ``p/log`` boundaries still order
        (log growth ranks just above constant).
        """
        if self.is_constant():
            return 0.0
        return float(self.term.exponent) + 0.01 * self.term.log_power

    def is_growing(self) -> bool:
        """True when the modeled metric grows without bound in *p*."""
        if self.is_constant():
            return False
        term_rises = self.term.exponent > 0 or (
            self.term.exponent == 0 and self.term.log_power > 0)
        return self.coefficient > 0 and term_rises

    # ------------------------------------------------------------------
    def __str__(self) -> str:
        term_str = str(self.term).replace("p", self.parameter)
        if self.is_constant():
            return f"{self.intercept}"
        return f"{self.intercept} + {self.coefficient} * {term_str}"

    def __repr__(self) -> str:
        return (f"Model({self.__str__()}, R2={self.r_squared:.4f}, "
                f"SMAPE={self.smape:.2f}%)")
