"""Performance Model Normal Form (PMNF) terms.

Extra-P (Calotoiu et al., SC'13 — cited by the paper) models a metric
as a function of a resource parameter *p* from the hypothesis space

.. math::  f(p) = c_0 + \\sum_k c_k \\cdot p^{i_k} \\cdot \\log_2^{j_k}(p)

with rational exponents *i* from a small candidate set and integer log
powers *j*.  This module enumerates the single-term hypothesis space
used by the modeler (one compute term plus a constant, Extra-P's
default search for one parameter).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable

import numpy as np

__all__ = ["Term", "default_hypothesis_space", "EXPONENTS", "LOG_POWERS"]

# Extra-P's default exponent candidates (subset, covering the common
# scaling regimes: constant, cube-root surface terms, linear, quadratic)
EXPONENTS: tuple[Fraction, ...] = (
    Fraction(0, 1),
    Fraction(1, 4), Fraction(1, 3), Fraction(1, 2),
    Fraction(2, 3), Fraction(3, 4), Fraction(1, 1),
    Fraction(4, 3), Fraction(3, 2), Fraction(2, 1),
    Fraction(5, 2), Fraction(3, 1),
    Fraction(-1, 3), Fraction(-1, 2), Fraction(-2, 3), Fraction(-1, 1),
)
LOG_POWERS: tuple[int, ...] = (0, 1, 2)


class Term:
    """One PMNF term ``p^exponent * log2(p)^log_power``."""

    __slots__ = ("exponent", "log_power")

    def __init__(self, exponent: Fraction | float, log_power: int = 0):
        self.exponent = Fraction(exponent).limit_denominator(12)
        self.log_power = int(log_power)

    def evaluate(self, p: np.ndarray | float) -> np.ndarray | float:
        p = np.asarray(p, dtype=np.float64)
        value = np.power(p, float(self.exponent))
        if self.log_power:
            value = value * np.log2(p) ** self.log_power
        return value

    def is_constant(self) -> bool:
        return self.exponent == 0 and self.log_power == 0

    # -- formatting ------------------------------------------------------
    def __str__(self) -> str:
        parts = []
        if self.exponent != 0:
            parts.append(f"p^({self.exponent})")
        if self.log_power:
            parts.append(f"log2(p)^{self.log_power}" if self.log_power > 1
                         else "log2(p)")
        return " * ".join(parts) if parts else "1"

    def __repr__(self) -> str:
        return f"Term({self.exponent}, log={self.log_power})"

    def __eq__(self, other: object) -> bool:
        return (isinstance(other, Term)
                and self.exponent == other.exponent
                and self.log_power == other.log_power)

    def __hash__(self) -> int:
        return hash((self.exponent, self.log_power))


def default_hypothesis_space(
    exponents: Iterable[Fraction] = EXPONENTS,
    log_powers: Iterable[int] = LOG_POWERS,
    allow_negative: bool = True,
) -> list[Term]:
    """All candidate non-constant terms for the single-parameter search."""
    terms = []
    for e in exponents:
        if not allow_negative and e < 0:
            continue
        for j in log_powers:
            if e == 0 and j == 0:
                continue  # the constant is always in the model
            if e < 0 and j > 0:
                continue  # decaying log terms are not in Extra-P's default space
            terms.append(Term(e, j))
    return terms
