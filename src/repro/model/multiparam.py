"""Multi-parameter empirical modeling (Extra-P's full capability).

Extra-P models metrics over several parameters at once (e.g. MPI ranks
*and* problem size) with hypotheses of the form

.. math::  f(p, q) = c_0 + c_1 \\cdot t_1(p) \\cdot t_2(q)

where each :math:`t_i` is a PMNF term or the constant 1 (so pure
single-parameter models are included).  Following Extra-P's search
strategy, the best single-parameter term is found per parameter first,
and the cross-product neighbourhood of those winners is then searched
— keeping the hypothesis space tractable.
"""

from __future__ import annotations

from typing import Hashable, Sequence

import numpy as np

from .terms import Term, default_hypothesis_space

__all__ = ["MultiParameterModel", "MultiParameterModeler"]


class MultiParameterModel:
    """``c0 + c1 * term_1(p_1) * ... * term_k(p_k)``."""

    __slots__ = ("intercept", "coefficient", "terms", "parameters",
                 "rss", "r_squared", "smape")

    def __init__(self, intercept: float, coefficient: float,
                 terms: Sequence[Term], parameters: Sequence[str],
                 rss: float = float("nan"), r_squared: float = float("nan"),
                 smape: float = float("nan")):
        self.intercept = float(intercept)
        self.coefficient = float(coefficient)
        self.terms = list(terms)
        self.parameters = list(parameters)
        self.rss = rss
        self.r_squared = r_squared
        self.smape = smape

    def evaluate(self, *values) -> np.ndarray | float:
        if len(values) != len(self.terms):
            raise ValueError(
                f"expected {len(self.terms)} parameter values")
        arrays = [np.asarray(v, dtype=np.float64) for v in values]
        basis = np.ones_like(arrays[0], dtype=np.float64)
        for term, arr in zip(self.terms, arrays):
            basis = basis * term.evaluate(arr)
        out = self.intercept + self.coefficient * basis
        if all(np.ndim(v) == 0 for v in values):
            return float(out)
        return out

    __call__ = evaluate

    def __str__(self) -> str:
        parts = []
        for term, param in zip(self.terms, self.parameters):
            if term.is_constant():
                continue
            parts.append(str(term).replace("p", param))
        if not parts or self.coefficient == 0.0:
            return f"{self.intercept}"
        return f"{self.intercept} + {self.coefficient} * " + " * ".join(parts)

    def __repr__(self) -> str:
        return f"MultiParameterModel({self}, R2={self.r_squared:.4f})"


class MultiParameterModeler:
    """Search the product-term hypothesis space over k parameters."""

    def __init__(self, hypothesis_space: Sequence[Term] | None = None,
                 neighbourhood: int = 3):
        self.hypothesis_space = list(hypothesis_space
                                     or default_hypothesis_space())
        self.neighbourhood = neighbourhood

    def fit(self, points: np.ndarray, y: np.ndarray,
            parameters: Sequence[str] | None = None) -> MultiParameterModel:
        """Fit measurements ``y`` at parameter matrix ``points`` (n × k)."""
        points = np.asarray(points, dtype=np.float64)
        y = np.asarray(y, dtype=np.float64)
        if points.ndim != 2 or len(points) != len(y):
            raise ValueError("points must be (n, k) matching y")
        if np.any(points <= 0):
            raise ValueError("parameter values must be positive")
        _, k = points.shape
        if parameters is None:
            parameters = [f"p{i}" for i in range(k)]
        if len(parameters) != k:
            raise ValueError("parameter names must match matrix width")

        # 1. per-parameter single-term winners (marginalizing the rest)
        candidate_sets: list[list[Term]] = []
        for j in range(k):
            scores: list[tuple[float, Term]] = [(self._rss(
                self._basis([Term(0)] * k, points), y), Term(0))]
            for term in self.hypothesis_space:
                terms = [Term(0)] * k
                terms[j] = term
                basis = self._basis(terms, points)
                if basis is None:
                    continue
                scores.append((self._rss(basis, y), term))
            scores.sort(key=lambda s: s[0])
            candidate_sets.append(
                [t for _, t in scores[: self.neighbourhood]])

        # 2. cross-product search over the shortlisted terms
        best: tuple[float, MultiParameterModel] | None = None

        def search(j: int, chosen: list[Term]) -> None:
            nonlocal best
            if j == k:
                basis = self._basis(chosen, points)
                if basis is None:
                    return
                fit = self._lstsq(basis, y)
                if fit is None:
                    return
                c0, c1, rss = fit
                penalty = 1.0 + 0.02 * sum(
                    0 if t.is_constant() else 1 for t in chosen)
                score = rss * penalty  # prefer simpler models on ties
                if best is None or score < best[0]:
                    model = self._package(c0, c1, chosen, parameters,
                                          points, y)
                    best = (score, model)
                return
            for term in candidate_sets[j]:
                search(j + 1, chosen + [term])

        search(0, [])
        assert best is not None
        return best[1]

    # ------------------------------------------------------------------
    def _basis(self, terms: Sequence[Term], points: np.ndarray
               ) -> np.ndarray | None:
        basis = np.ones(len(points), dtype=np.float64)
        for j, term in enumerate(terms):
            basis = basis * term.evaluate(points[:, j])
        if not np.all(np.isfinite(basis)):
            return None
        return basis

    def _lstsq(self, basis: np.ndarray, y: np.ndarray
               ) -> tuple[float, float, float] | None:
        A = np.column_stack([np.ones_like(basis), basis])
        try:
            coef, *_ = np.linalg.lstsq(A, y, rcond=None)
        except np.linalg.LinAlgError:  # pragma: no cover
            return None
        pred = A @ coef
        rss = float(((y - pred) ** 2).sum())
        return float(coef[0]), float(coef[1]), rss

    def _rss(self, basis: np.ndarray | None, y: np.ndarray) -> float:
        if basis is None:
            return float("inf")
        fit = self._lstsq(basis, y)
        return fit[2] if fit else float("inf")

    def _package(self, c0: float, c1: float, terms: list[Term],
                 parameters: Sequence[str], points: np.ndarray,
                 y: np.ndarray) -> MultiParameterModel:
        basis = self._basis(terms, points)
        pred = c0 + c1 * basis
        resid = y - pred
        rss = float((resid ** 2).sum())
        tss = float(((y - y.mean()) ** 2).sum())
        r2 = 1.0 - rss / tss if tss > 0 else 1.0
        denom = np.abs(y) + np.abs(pred)
        with np.errstate(invalid="ignore", divide="ignore"):
            ratio = np.where(denom > 0, 2.0 * np.abs(resid) / denom, 0.0)
        smape = float(100.0 * np.mean(ratio))
        return MultiParameterModel(c0, c1, terms, parameters,
                                   rss=rss, r_squared=r2, smape=smape)


def model_thicket_multiparam(tk, parameter_columns: Sequence[str],
                             metric: Hashable, aggregate: str = "mean"):
    """Bulk per-node multi-parameter models from a Thicket ensemble."""
    from ..frame.ops import AGGREGATIONS

    agg = AGGREGATIONS[aggregate]
    params_by_profile = {
        pid: tuple(float(row[c]) for c in parameter_columns)
        for pid, row in tk.metadata.iterrows()
    }
    per_node: dict = {}
    col = tk.dataframe.column(metric)
    for i, t in enumerate(tk.dataframe.index.values):
        v = col[i]
        if v is None or (isinstance(v, float) and np.isnan(v)):
            continue
        key = params_by_profile[t[1]]
        per_node.setdefault(t[0], {}).setdefault(key, []).append(float(v))

    modeler = MultiParameterModeler()
    models = {}
    for node, by_point in per_node.items():
        if len(by_point) < 4:
            continue
        pts = np.asarray(sorted(by_point), dtype=np.float64)
        ys = np.asarray([
            agg(np.asarray(by_point[tuple(p)])) for p in pts
        ])
        models[node] = modeler.fit(pts, ys, parameters=list(parameter_columns))
    return models
